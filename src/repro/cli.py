"""Command-line interface of the reproduction.

Four sub-commands cover the common workflows without writing any Python:

``detect``
    run one HHH algorithm over a synthetic workload (or a serialized trace)
    and print the detected prefixes; ``--print-spec`` emits the equivalent
    JSON :class:`~repro.api.specs.ExperimentSpec` instead of running;

``run``
    execute a JSON experiment spec (the declarative twin of ``detect``);

``compare``
    run several algorithms over the same stream and print speed + quality
    against the exact ground truth;

``figure``
    regenerate one of the paper's figures and print its table.

Examples::

    python -m repro.cli detect --workload chicago16 --packets 200000 --theta 0.05
    python -m repro.cli detect --print-spec > experiment.json
    python -m repro.cli run --spec experiment.json
    python -m repro.cli compare --algorithms rhhh mst --packets 50000
    python -m repro.cli figure --name fig6

The CLI is a thin veneer over :mod:`repro.api`: algorithm and hierarchy
choices come from the plugin registries, and every execution path goes
through :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import List, Optional, Sequence

from repro.api.registry import algorithm_names, counter_names, hierarchy_names, make_hierarchy
from repro.api.session import Session, SessionResult
from repro.api.specs import AlgorithmSpec, CounterSpec, ExperimentSpec
from repro.core.base import HHHAlgorithm
from repro.eval import figures as figure_module
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import evaluate_output
from repro.eval.reporting import format_table
from repro.exceptions import ReproError
from repro.traffic.caida_like import WORKLOADS
from repro.traffic.trace_io import read_trace_binary

#: Hierarchy constructors, keyed by registry name (kept as a dict for
#: backwards compatibility; the source of truth is the repro.api registry).
HIERARCHIES = {name: functools.partial(make_hierarchy, name) for name in hierarchy_names()}

FIGURES = {
    "fig2": figure_module.figure2_accuracy_error,
    "fig3": figure_module.figure3_coverage_error,
    "fig4": figure_module.figure4_false_positives,
    "fig5": figure_module.figure5_update_speed,
    "fig6": figure_module.figure6_ovs_dataplane,
    "fig7": figure_module.figure7_dataplane_v_sweep,
    "fig8": figure_module.figure8_distributed_v_sweep,
    "convergence": figure_module.convergence_study,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser("detect", help="run one algorithm and print the HHH prefixes")
    _add_stream_arguments(detect)
    detect.add_argument("--algorithm", default="rhhh", choices=algorithm_names())
    detect.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")
    detect.add_argument(
        "--print-spec",
        action="store_true",
        help="print the equivalent JSON ExperimentSpec instead of running",
    )

    run = subparsers.add_parser("run", help="execute a JSON experiment spec")
    run.add_argument("--spec", required=True, help="path to an ExperimentSpec JSON file ('-' for stdin)")
    run.add_argument("--theta", type=float, default=None, help="override the spec's theta")

    compare = subparsers.add_parser("compare", help="compare several algorithms on the same stream")
    _add_stream_arguments(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["rhhh", "10-rhhh", "mst", "partial_ancestry"],
        choices=algorithm_names(),
    )
    compare.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("--name", required=True, choices=sorted(FIGURES))

    return parser


def _add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="chicago16", choices=sorted(WORKLOADS))
    parser.add_argument("--trace", help="read packets from a binary trace instead of a synthetic workload")
    parser.add_argument("--packets", type=int, default=100_000)
    parser.add_argument("--hierarchy", default="2d-bytes", choices=hierarchy_names())
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="feed the stream through update_batch in chunks of this size "
        "(default: per-packet updates)",
    )
    parser.add_argument(
        "--counter",
        default=None,
        choices=counter_names(),
        help="per-node counter backend (default: the algorithm's own, "
        "Space Saving; use array_space_saving for the vectorized batch "
        "backend)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="hash-partition the stream across this many parallel worker "
        "shards and merge their counter summaries at output time "
        "(default: unsharded)",
    )


def _spec_from_args(args: argparse.Namespace, algorithm: str, theta: float) -> ExperimentSpec:
    """Translate stream arguments into a declarative ExperimentSpec."""
    _check_batch_size(args.batch_size)
    counter = CounterSpec(name=args.counter) if getattr(args, "counter", None) else None
    try:
        return ExperimentSpec(
            algorithm=AlgorithmSpec(
                name=algorithm,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=args.seed,
                counter=counter,
            ),
            hierarchy=args.hierarchy,
            workload=args.workload,
            packets=args.packets,
            theta=theta,
            batch_size=args.batch_size,
            shards=args.shards,
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from None


def _trace_keys(args: argparse.Namespace, dimensions: int) -> Optional[List]:
    """Materialise keys from a binary trace, or None for synthetic workloads."""
    if not args.trace:
        return None
    packets = list(read_trace_binary(args.trace))[: args.packets]
    return [p.key_1d() if dimensions == 1 else p.key_2d() for p in packets]


def _check_batch_size(batch_size) -> None:
    """Exit with a clean message on a non-positive --batch-size."""
    if batch_size is not None and batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {batch_size}")


def _print_detection(result: SessionResult, *, algorithm: str, hierarchy: str, theta: float) -> None:
    rows = [
        {
            "prefix": candidate.prefix.text,
            "lower": candidate.lower_bound,
            "upper": candidate.upper_bound,
        }
        for candidate in result.output
    ]
    print(
        format_table(
            rows,
            title=(
                f"{algorithm} on {result.packets:,} packets "
                f"({hierarchy}, theta={theta:.2%}): {len(rows)} HHH prefixes"
            ),
            float_format="{:,.0f}",
        )
    )


def _command_detect(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, args.algorithm, args.theta)
    if args.print_spec:
        if args.trace:
            # A spec names a synthetic workload; it cannot encode a trace
            # file, so printing one here would silently change the stream.
            raise SystemExit("--print-spec cannot express --trace runs; specs name synthetic workloads")
        print(spec.to_json())
        return 0
    hierarchy = make_hierarchy(spec.hierarchy)
    with Session(spec, hierarchy=hierarchy, keys=_trace_keys(args, hierarchy.dimensions)) as session:
        result = session.run()
    _print_detection(result, algorithm=spec.algorithm.name, hierarchy=spec.hierarchy, theta=spec.theta)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    try:
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec) as handle:
                text = handle.read()
        spec = ExperimentSpec.from_json(text)
        with Session(spec) as session:
            result = session.run(theta=args.theta)
    except OSError as exc:
        print(f"error: cannot read spec: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_detection(
        result,
        algorithm=spec.algorithm.name,
        hierarchy=spec.hierarchy,
        theta=args.theta if args.theta is not None else spec.theta,
    )
    print(
        f"\n{result.packets:,} packets in {result.seconds:.2f}s "
        f"({result.packets_per_second / 1e3:,.0f} kpps)"
        + (f"  [{spec.label}]" if spec.label else "")
    )
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    _check_batch_size(args.batch_size)
    hierarchy = make_hierarchy(args.hierarchy)
    trace_keys = _trace_keys(args, hierarchy.dimensions)
    rows = []
    truth: Optional[GroundTruth] = None
    keys = trace_keys
    packets = 0
    for name in args.algorithms:
        spec = _spec_from_args(args, name, args.theta)
        # Materialise the stream once (the first session draws it) and share
        # it: every algorithm must see the same packets anyway, and workload
        # generation is far from free.
        try:
            session = Session(spec, hierarchy=hierarchy, keys=keys)
        except ReproError as exc:
            # e.g. --shards with an algorithm that has no counter lattice
            # (the ancestry baselines): report and keep the other rows.
            print(f"skipping {name}: {exc}", file=sys.stderr)
            continue
        with session:
            keys = session.keys()
            packets = len(keys)
            if truth is None:
                truth = GroundTruth(hierarchy, list(HHHAlgorithm._iter_batch_keys(keys)))
            speed = session.measure_speed()
            report = evaluate_output(
                session.output(args.theta), truth, epsilon=args.epsilon, theta=args.theta
            )
        rows.append(
            {
                "algorithm": name,
                "kpps": speed.packets_per_second / 1e3,
                "reported": report.reported,
                "precision": report.precision,
                "recall": report.recall,
                "false_positive_ratio": report.false_positive_ratio,
            }
        )
    print(format_table(rows, title=f"{packets:,} packets, {args.hierarchy}, theta={args.theta:.2%}"))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    result = FIGURES[args.name]()
    print(result.table())
    if result.notes:
        print(f"\nNotes: {result.notes}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "detect":
        return _command_detect(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "figure":
        return _command_figure(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
