"""Command-line interface of the reproduction.

Three sub-commands cover the common workflows without writing any Python:

``detect``
    run one HHH algorithm over a synthetic workload (or a serialized trace)
    and print the detected prefixes;

``compare``
    run several algorithms over the same stream and print speed + quality
    against the exact ground truth;

``figure``
    regenerate one of the paper's figures and print its table.

Examples::

    python -m repro.cli detect --workload chicago16 --packets 200000 --theta 0.05
    python -m repro.cli compare --algorithms rhhh mst --packets 50000
    python -m repro.cli figure --name fig6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.eval import figures as figure_module
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import evaluate_output
from repro.eval.reporting import format_table
from repro.eval.speed import measure_batch_update_speed, measure_update_speed
from repro.hhh.registry import ALGORITHM_REGISTRY, make_algorithm
from repro.hierarchy.onedim import ipv4_bit_hierarchy, ipv4_byte_hierarchy
from repro.hierarchy.twodim import ipv4_two_dim_byte_hierarchy
from repro.traffic.caida_like import WORKLOADS, named_workload
from repro.traffic.trace_io import read_trace_binary

HIERARCHIES = {
    "1d-bytes": ipv4_byte_hierarchy,
    "1d-bits": ipv4_bit_hierarchy,
    "2d-bytes": ipv4_two_dim_byte_hierarchy,
}

FIGURES = {
    "fig2": figure_module.figure2_accuracy_error,
    "fig3": figure_module.figure3_coverage_error,
    "fig4": figure_module.figure4_false_positives,
    "fig5": figure_module.figure5_update_speed,
    "fig6": figure_module.figure6_ovs_dataplane,
    "fig7": figure_module.figure7_dataplane_v_sweep,
    "fig8": figure_module.figure8_distributed_v_sweep,
    "convergence": figure_module.convergence_study,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser("detect", help="run one algorithm and print the HHH prefixes")
    _add_stream_arguments(detect)
    detect.add_argument("--algorithm", default="rhhh", choices=sorted(ALGORITHM_REGISTRY))
    detect.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")

    compare = subparsers.add_parser("compare", help="compare several algorithms on the same stream")
    _add_stream_arguments(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["rhhh", "10-rhhh", "mst", "partial_ancestry"],
        choices=sorted(ALGORITHM_REGISTRY),
    )
    compare.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("--name", required=True, choices=sorted(FIGURES))

    return parser


def _add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="chicago16", choices=sorted(WORKLOADS))
    parser.add_argument("--trace", help="read packets from a binary trace instead of a synthetic workload")
    parser.add_argument("--packets", type=int, default=100_000)
    parser.add_argument("--hierarchy", default="2d-bytes", choices=sorted(HIERARCHIES))
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="feed the stream through update_batch in chunks of this size "
        "(default: per-packet updates)",
    )


def _load_keys(args: argparse.Namespace, dimensions: int) -> List:
    if args.trace:
        packets = list(read_trace_binary(args.trace))[: args.packets]
        return [p.key_1d() if dimensions == 1 else p.key_2d() for p in packets]
    workload = named_workload(args.workload)
    if dimensions == 1:
        return workload.keys_1d(args.packets)
    return workload.keys_2d(args.packets)


def _check_batch_size(batch_size) -> None:
    """Exit with a clean message on a non-positive --batch-size."""
    if batch_size is not None and batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {batch_size}")


def _feed_stream(algorithm, keys, batch_size) -> None:
    """Feed a key stream per-packet, or through update_batch when a size is given."""
    _check_batch_size(batch_size)
    if batch_size is None:
        algorithm.update_stream(keys)
        return
    for start in range(0, len(keys), batch_size):
        algorithm.update_batch(keys[start : start + batch_size])


def _command_detect(args: argparse.Namespace) -> int:
    _check_batch_size(args.batch_size)
    hierarchy = HIERARCHIES[args.hierarchy]()
    keys = _load_keys(args, hierarchy.dimensions)
    algorithm = make_algorithm(
        args.algorithm, hierarchy, epsilon=args.epsilon, delta=args.delta, seed=args.seed
    )
    _feed_stream(algorithm, keys, args.batch_size)
    output = algorithm.output(args.theta)
    rows = [
        {
            "prefix": candidate.prefix.text,
            "lower": candidate.lower_bound,
            "upper": candidate.upper_bound,
        }
        for candidate in output
    ]
    print(
        format_table(
            rows,
            title=(
                f"{args.algorithm} on {len(keys):,} packets "
                f"({args.hierarchy}, theta={args.theta:.2%}): {len(rows)} HHH prefixes"
            ),
            float_format="{:,.0f}",
        )
    )
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    _check_batch_size(args.batch_size)
    hierarchy = HIERARCHIES[args.hierarchy]()
    keys = _load_keys(args, hierarchy.dimensions)
    truth = GroundTruth(hierarchy, keys)
    rows = []
    for name in args.algorithms:
        algorithm = make_algorithm(
            name, hierarchy, epsilon=args.epsilon, delta=args.delta, seed=args.seed
        )
        if args.batch_size is not None:
            speed = measure_batch_update_speed(algorithm, keys, batch_size=args.batch_size)
        else:
            speed = measure_update_speed(algorithm, keys)
        report = evaluate_output(algorithm.output(args.theta), truth, epsilon=args.epsilon, theta=args.theta)
        rows.append(
            {
                "algorithm": name,
                "kpps": speed.packets_per_second / 1e3,
                "reported": report.reported,
                "precision": report.precision,
                "recall": report.recall,
                "false_positive_ratio": report.false_positive_ratio,
            }
        )
    print(format_table(rows, title=f"{len(keys):,} packets, {args.hierarchy}, theta={args.theta:.2%}"))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    result = FIGURES[args.name]()
    print(result.table())
    if result.notes:
        print(f"\nNotes: {result.notes}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "detect":
        return _command_detect(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "figure":
        return _command_figure(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
