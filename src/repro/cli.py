"""Command-line interface of the reproduction.

Five sub-commands cover the common workflows without writing any Python:

``detect``
    run one HHH algorithm over a synthetic workload (or a serialized trace)
    and print the detected prefixes; ``--print-spec`` emits the equivalent
    JSON :class:`~repro.api.specs.ExperimentSpec` instead of running;

``run``
    execute a JSON experiment spec (the declarative twin of ``detect``);
    ``--trace``/``--ingest`` override the spec's trace replay settings;

``compare``
    run several algorithms over the same stream and print speed + quality
    against the exact ground truth;

``figure``
    regenerate one of the paper's figures and print its table;

``trace``
    manage serialized traces: ``generate`` a v2 columnar trace from a named
    workload, ``convert`` between csv/v1/v2, ``inspect`` a file's layout;

``distrib``
    simulate the distributed aggregation tier: the stream partitioned across
    N switch nodes shipping compressed counter state to one aggregator, with
    the global HHH prefixes and a per-switch bandwidth table printed.

Examples::

    python -m repro.cli detect --workload chicago16 --packets 200000 --theta 0.05
    python -m repro.cli distrib --switches 16 --packets 500000 --batch-size 8192 --top-k 64
    python -m repro.cli detect --print-spec > experiment.json
    python -m repro.cli run --spec experiment.json
    python -m repro.cli run --spec experiment.json --watch 4
    python -m repro.cli compare --algorithms rhhh mst --packets 50000
    python -m repro.cli figure --name fig6
    python -m repro.cli trace generate trace.v2 --workload sanjose14 --packets 500000
    python -m repro.cli trace convert old_trace.bin trace.v2
    python -m repro.cli detect --trace trace.v2 --batch-size 65536 --ingest 4

The CLI is a thin veneer over :mod:`repro.api`: algorithm and hierarchy
choices come from the plugin registries, and every execution path goes
through :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.api.registry import algorithm_names, counter_names, hierarchy_names, make_hierarchy
from repro.api.session import Session, SessionResult
from repro.api.specs import AlgorithmSpec, CounterSpec, DistribSpec, ExperimentSpec
from repro.core.base import HHHAlgorithm
from repro.core.faults import FaultPlan
from repro.eval import figures as figure_module
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import evaluate_output
from repro.eval.reporting import format_table
from repro.exceptions import ReproError
from repro.traffic.caida_like import WORKLOADS, named_workload
from repro.traffic.trace_io import (
    DEFAULT_TRACE_CHUNK,
    TraceV2Writer,
    inspect_trace,
    read_trace_binary,
    read_trace_csv,
    trace_version,
    write_trace_binary,
    write_trace_csv,
    write_trace_v2,
)

#: Hierarchy constructors, keyed by registry name (kept as a dict for
#: backwards compatibility; the source of truth is the repro.api registry).
HIERARCHIES = {name: functools.partial(make_hierarchy, name) for name in hierarchy_names()}

FIGURES = {
    "fig2": figure_module.figure2_accuracy_error,
    "fig3": figure_module.figure3_coverage_error,
    "fig4": figure_module.figure4_false_positives,
    "fig5": figure_module.figure5_update_speed,
    "fig6": figure_module.figure6_ovs_dataplane,
    "fig7": figure_module.figure7_dataplane_v_sweep,
    "fig8": figure_module.figure8_distributed_v_sweep,
    "convergence": figure_module.convergence_study,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser("detect", help="run one algorithm and print the HHH prefixes")
    _add_stream_arguments(detect)
    detect.add_argument("--algorithm", default="rhhh", choices=algorithm_names())
    detect.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")
    detect.add_argument(
        "--print-spec",
        action="store_true",
        help="print the equivalent JSON ExperimentSpec instead of running",
    )

    run = subparsers.add_parser("run", help="execute a JSON experiment spec")
    run.add_argument("--spec", default=None, help="path to an ExperimentSpec JSON file ('-' for stdin)")
    run.add_argument(
        "--resume",
        default=None,
        metavar="CHECKPOINT",
        help="resume a run from a session checkpoint file instead of starting "
        "from a spec (mutually exclusive with --spec; the spec is restored "
        "from the checkpoint)",
    )
    run.add_argument("--theta", type=float, default=None, help="override the spec's theta")
    run.add_argument("--trace", default=None, help="override the spec's trace file")
    run.add_argument(
        "--ingest",
        type=int,
        default=None,
        help="override the spec's ingest ring depth (overlap trace reading "
        "with the batch engine)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="override the spec's checkpoint cadence: write a session "
        "checkpoint roughly every this many fed packets (requires "
        "--checkpoint-path or a spec-level checkpoint path)",
    )
    run.add_argument(
        "--checkpoint-path",
        default=None,
        help="override the file the periodic session checkpoint is "
        "(atomically) written to; resume with `repro run --resume PATH`",
    )
    run.add_argument(
        "--watch",
        type=int,
        default=None,
        metavar="N",
        help="stream the run and print an intermediate HHH report line every "
        "N fed chunks (batch_size packets each; progress_chunk on the "
        "per-packet path) before the final table - served at monitor rate "
        "by the incremental query engine",
    )

    compare = subparsers.add_parser("compare", help="compare several algorithms on the same stream")
    _add_stream_arguments(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["rhhh", "10-rhhh", "mst", "partial_ancestry"],
        choices=algorithm_names(),
    )
    compare.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("--name", required=True, choices=sorted(FIGURES))

    trace = subparsers.add_parser("trace", help="generate, convert and inspect serialized traces")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    generate = trace_commands.add_parser(
        "generate", help="draw a named workload once and save it as a trace"
    )
    generate.add_argument("output", help="trace file to write")
    generate.add_argument("--workload", default="chicago16", choices=sorted(WORKLOADS))
    generate.add_argument("--packets", type=int, default=500_000)
    generate.add_argument("--num-flows", type=int, default=None)
    generate.add_argument(
        "--format", default="v2", choices=("v2", "v1", "csv"), help="output format (default: v2 columnar)"
    )
    generate.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_TRACE_CHUNK,
        help="packets per v2 chunk (v2 only)",
    )

    convert = trace_commands.add_parser(
        "convert", help="convert a trace between csv, v1 rows and v2 columnar"
    )
    convert.add_argument("input", help="source trace (csv or binary; format auto-detected)")
    convert.add_argument("output", help="destination trace file")
    convert.add_argument(
        "--format", default="v2", choices=("v2", "v1", "csv"), help="output format (default: v2 columnar)"
    )
    convert.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_TRACE_CHUNK,
        help="packets per v2 chunk (v2 only)",
    )

    inspect = trace_commands.add_parser("inspect", help="print a binary trace's layout summary")
    inspect.add_argument("path", help="trace file to inspect")

    distrib = subparsers.add_parser(
        "distrib", help="simulate the many-switch aggregation tier over one stream"
    )
    _add_stream_arguments(distrib)
    distrib.add_argument("--algorithm", default="rhhh", choices=algorithm_names())
    distrib.add_argument("--theta", type=float, default=0.05, help="HHH threshold fraction")
    distrib.add_argument("--switches", type=int, default=4, help="number of simulated switches")
    distrib.add_argument(
        "--epoch-batches",
        type=int,
        default=1,
        help="emit one wire message per switch every this many batches",
    )
    distrib.add_argument(
        "--top-k",
        type=int,
        default=None,
        help="ship only the top-k entries per lattice node (lossy, "
        "error-bounded; default: lossless)",
    )
    distrib.add_argument(
        "--no-delta",
        action="store_true",
        help="always ship full snapshots instead of deltas against the last "
        "acked epoch",
    )
    distrib.add_argument(
        "--transport",
        default="loopback",
        choices=("loopback", "simulated"),
        help="loopback is reliable/ordered; simulated adds seeded loss, "
        "delay and reordering driven by --drops/--net-delays/--reorders",
    )
    distrib.add_argument(
        "--byte-budget",
        type=int,
        default=None,
        help="per-switch shipped-bytes budget flagged in the bandwidth report",
    )
    distrib.add_argument(
        "--drops", type=int, default=0, help="messages dropped by the simulated transport"
    )
    distrib.add_argument(
        "--net-delays", type=int, default=0, help="messages delayed by the simulated transport"
    )
    distrib.add_argument(
        "--reorders", type=int, default=0, help="messages reordered by the simulated transport"
    )

    return parser


def _add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="chicago16", choices=sorted(WORKLOADS))
    parser.add_argument("--trace", help="read packets from a binary trace instead of a synthetic workload")
    parser.add_argument(
        "--ingest",
        type=int,
        default=None,
        help="ring-buffer depth overlapping trace reading with the batch "
        "engine (requires --trace and --batch-size; default: inline feed)",
    )
    parser.add_argument("--packets", type=int, default=100_000)
    parser.add_argument("--hierarchy", default="2d-bytes", choices=hierarchy_names())
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--delta", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="feed the stream through update_batch in chunks of this size "
        "(default: per-packet updates)",
    )
    parser.add_argument(
        "--counter",
        default=None,
        choices=counter_names(),
        help="per-node counter backend (default: the algorithm's own, "
        "Space Saving; use array_space_saving for the vectorized batch "
        "backend)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="hash-partition the stream across this many parallel worker "
        "shards and merge their counter summaries at output time "
        "(default: unsharded)",
    )
    parser.add_argument(
        "--shard-policy",
        default="fail",
        choices=("fail", "restart", "degrade"),
        help="supervision policy when a shard worker crashes or hangs: fail "
        "(raise), restart (respawn from its last checkpoint and replay - "
        "bit-identical recovery), degrade (continue with survivors and "
        "widen the error bounds)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for a shard worker's reply before declaring "
        "it hung (default: 30)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="write a session checkpoint roughly every this many fed packets "
        "(requires --checkpoint-path)",
    )
    parser.add_argument(
        "--checkpoint-path",
        default=None,
        help="file the periodic session checkpoint is (atomically) written to; "
        "resume with `repro run --resume PATH`",
    )


def _spec_from_args(args: argparse.Namespace, algorithm: str, theta: float) -> ExperimentSpec:
    """Translate stream arguments into a declarative ExperimentSpec."""
    _check_batch_size(args.batch_size)
    counter = CounterSpec(name=args.counter) if getattr(args, "counter", None) else None
    try:
        return ExperimentSpec(
            algorithm=AlgorithmSpec(
                name=algorithm,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=args.seed,
                counter=counter,
            ),
            hierarchy=args.hierarchy,
            workload=args.workload,
            trace=args.trace,
            ingest=args.ingest,
            packets=args.packets,
            theta=theta,
            batch_size=args.batch_size,
            shards=args.shards,
            shard_policy=getattr(args, "shard_policy", "fail"),
            shard_timeout=getattr(args, "shard_timeout", 30.0),
            checkpoint_every=getattr(args, "checkpoint_every", None),
            checkpoint_path=getattr(args, "checkpoint_path", None),
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from None


def _check_batch_size(batch_size) -> None:
    """Exit with a clean message on a non-positive --batch-size."""
    if batch_size is not None and batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {batch_size}")


def _print_detection(result: SessionResult, *, algorithm: str, hierarchy: str, theta: float) -> None:
    rows = [
        {
            "prefix": candidate.prefix.text,
            "lower": candidate.lower_bound,
            "upper": candidate.upper_bound,
        }
        for candidate in result.output
    ]
    print(
        format_table(
            rows,
            title=(
                f"{algorithm} on {result.packets:,} packets "
                f"({hierarchy}, theta={theta:.2%}): {len(rows)} HHH prefixes"
            ),
            float_format="{:,.0f}",
        )
    )


def _command_detect(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, args.algorithm, args.theta)
    if args.print_spec:
        # Specs carry trace paths since the trace/ingest fields landed, so
        # --print-spec round-trips --trace runs too.
        print(spec.to_json())
        return 0
    with Session(spec) as session:
        result = session.run()
    _print_detection(result, algorithm=spec.algorithm.name, hierarchy=spec.hierarchy, theta=spec.theta)
    return 0


def _watch_session(session: Session, theta: Optional[float], every: int) -> SessionResult:
    """Drain :meth:`Session.watch`, printing one report line per cadence point.

    Returns a :class:`SessionResult` built from the final report (the last
    watch output equals what ``run()`` would have returned), so the caller
    prints the same final table either way.
    """
    start = time.perf_counter()
    last = None
    for output in session.watch(theta, every=every):
        last = output
        print(
            f"watch @ {session.stream_position:>12,} pkts: "
            f"{len(output.candidates):>4} HHH prefixes "
            f"(threshold {output.threshold:,.0f})"
        )
    return SessionResult(
        spec=session.spec,
        output=last,
        packets=session.stream_position,
        seconds=time.perf_counter() - start,
        measurements=[],
    )


def _command_run(args: argparse.Namespace) -> int:
    if (args.spec is None) == (args.resume is None):
        print("error: pass exactly one of --spec or --resume", file=sys.stderr)
        return 1
    try:
        if args.resume is not None:
            if args.trace is not None or args.ingest is not None:
                print(
                    "error: --trace/--ingest overrides do not apply to --resume "
                    "(the checkpointed spec must replay the original stream)",
                    file=sys.stderr,
                )
                return 1
            if args.checkpoint_every is not None or args.checkpoint_path is not None:
                print(
                    "error: --checkpoint-every/--checkpoint-path overrides do "
                    "not apply to --resume (the resumed session keeps the "
                    "checkpointed cadence and path)",
                    file=sys.stderr,
                )
                return 1
            with Session.resume(args.resume) as session:
                spec = session.spec
                if args.watch is not None:
                    result = _watch_session(session, args.theta, args.watch)
                else:
                    result = session.run(theta=args.theta)
        else:
            if args.spec == "-":
                text = sys.stdin.read()
            else:
                with open(args.spec) as handle:
                    text = handle.read()
            spec = ExperimentSpec.from_json(text)
            overrides = {
                "trace": args.trace,
                "ingest": args.ingest,
                "checkpoint_every": args.checkpoint_every,
                "checkpoint_path": args.checkpoint_path,
            }
            applied = {key: value for key, value in overrides.items() if value is not None}
            if applied:
                spec = dataclasses.replace(spec, **applied)
            with Session(spec) as session:
                if args.watch is not None:
                    result = _watch_session(session, args.theta, args.watch)
                else:
                    result = session.run(theta=args.theta)
    except OSError as exc:
        print(f"error: cannot read spec: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_detection(
        result,
        algorithm=spec.algorithm.name,
        hierarchy=spec.hierarchy,
        theta=args.theta if args.theta is not None else spec.theta,
    )
    print(
        f"\n{result.packets:,} packets in {result.seconds:.2f}s "
        f"({result.packets_per_second / 1e3:,.0f} kpps)"
        + (f"  [{spec.label}]" if spec.label else "")
    )
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    _check_batch_size(args.batch_size)
    if args.ingest is not None:
        # compare materialises the stream once and shares it across the
        # algorithms (same packets for a fair comparison), so there is no
        # streaming feed to overlap; accepting the flag would silently
        # report non-overlapped numbers as overlapped.
        raise SystemExit(
            "--ingest does not apply to compare (the stream is materialised "
            "once and shared); use detect or run for overlapped trace replay"
        )
    hierarchy = make_hierarchy(args.hierarchy)
    rows = []
    truth: Optional[GroundTruth] = None
    keys = None  # materialised by the first session (trace- and spec-aware)
    packets = 0
    for name in args.algorithms:
        spec = _spec_from_args(args, name, args.theta)
        # Materialise the stream once (the first session draws it) and share
        # it: every algorithm must see the same packets anyway, and workload
        # generation is far from free.
        try:
            session = Session(spec, hierarchy=hierarchy, keys=keys)
        except ReproError as exc:
            # e.g. --shards with an algorithm that has no counter lattice
            # (the ancestry baselines): report and keep the other rows.
            print(f"skipping {name}: {exc}", file=sys.stderr)
            continue
        with session:
            keys = session.keys()
            packets = len(keys)
            if truth is None:
                truth = GroundTruth(hierarchy, list(HHHAlgorithm._iter_batch_keys(keys)))
            speed = session.measure_speed()
            report = evaluate_output(
                session.output(args.theta), truth, epsilon=args.epsilon, theta=args.theta
            )
        rows.append(
            {
                "algorithm": name,
                "kpps": speed.packets_per_second / 1e3,
                "reported": report.reported,
                "precision": report.precision,
                "recall": report.recall,
                "false_positive_ratio": report.false_positive_ratio,
            }
        )
    print(format_table(rows, title=f"{packets:,} packets, {args.hierarchy}, theta={args.theta:.2%}"))
    return 0


def _command_distrib(args: argparse.Namespace) -> int:
    if args.batch_size is None:
        args.batch_size = 8192  # the tier is batch-first; give it a sane default
    base = _spec_from_args(args, args.algorithm, args.theta)
    try:
        spec = dataclasses.replace(
            base,
            shards=None,
            distrib=DistribSpec(
                switches=args.switches,
                epoch_batches=args.epoch_batches,
                top_k=args.top_k,
                delta=not args.no_delta,
                transport=args.transport,
                byte_budget=args.byte_budget,
            ),
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    fault_plan = None
    faults = args.drops + args.net_delays + args.reorders
    if faults:
        if args.transport != "simulated":
            raise SystemExit(
                "--drops/--net-delays/--reorders need --transport simulated "
                "(loopback never loses messages)"
            )
        # Roughly one message per switch per epoch over the whole run.
        messages = max(faults, (spec.packets // (args.batch_size * args.epoch_batches)) + 1)
        fault_plan = FaultPlan.random_network(
            args.seed,
            messages=messages,
            switches=args.switches,
            drops=args.drops,
            delays=args.net_delays,
            reorders=args.reorders,
        )
    try:
        with Session(spec, fault_plan=fault_plan) as session:
            result = session.run()
            cluster = session.algorithm
            report = cluster.bandwidth_report()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_detection(
        result, algorithm=spec.algorithm.name, hierarchy=spec.hierarchy, theta=spec.theta
    )
    if result.output.failed_shards:
        print("\nquantified loss:")
        for loss in result.output.failed_shards:
            print(f"  switch {loss.shard}: {loss.lost_packets:,} packets ({loss.reason})")
    rows = [
        {
            "switch": entry["switch"],
            "messages": entry["messages"],
            "bytes": entry["bytes"],
            "bytes_per_epoch": entry["bytes_per_epoch"],
            "snapshots": entry["snapshots"],
            "deltas": entry["deltas"],
            "dropped": entry["dropped"],
        }
        for entry in report["per_switch"]
    ]
    budget = report["budget_per_switch"]
    print(
        "\n"
        + format_table(
            rows,
            title=(
                f"bandwidth: {report['total_bytes']:,} bytes total over "
                f"{report['epochs']} epochs, max switch "
                f"{report['max_switch_bytes']:,} bytes"
                + (f" (budget {budget:,})" if budget is not None else "")
            ),
            float_format="{:,.0f}",
        )
    )
    if report["over_budget"]:
        print(f"over budget: switches {report['over_budget']}", file=sys.stderr)
        return 1
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    result = FIGURES[args.name]()
    print(result.table())
    if result.notes:
        print(f"\nNotes: {result.notes}")
    return 0


def _write_packets(path: str, packets, fmt: str, chunk_size: int) -> int:
    """Write a packet iterable in the requested trace format."""
    if fmt == "v2":
        return write_trace_v2(path, packets, chunk_size=chunk_size)
    if fmt == "v1":
        return write_trace_binary(path, packets)
    return write_trace_csv(path, packets)


def _command_trace(args: argparse.Namespace) -> int:
    try:
        if args.trace_command == "generate":
            generator = named_workload(args.workload, num_flows=args.num_flows)
            if args.format == "v2":
                # Vectorized route: the key-array emitter feeds whole columnar
                # chunks, never materialising per-packet objects.
                with TraceV2Writer(args.output, chunk_size=args.chunk_size) as writer:
                    count = writer.key_batches_from(
                        generator.key_batches(args.packets, args.chunk_size)
                    )
            else:
                count = _write_packets(
                    args.output, generator.packets(args.packets), args.format, args.chunk_size
                )
            print(f"wrote {count:,} packets ({args.workload}, {args.format}) to {args.output}")
            return 0
        if args.trace_command == "convert":
            if Path(args.input).resolve() == Path(args.output).resolve():
                # The reader memory-maps the input while the writer would
                # truncate it: in-place conversion destroys the trace.
                print("error: input and output are the same file; convert to a new path",
                      file=sys.stderr)
                return 1
            try:
                trace_version(args.input)
                is_binary = True
            except ReproError:
                is_binary = False  # no RHHH magic: try CSV below
            if is_binary:
                # A recognized binary trace that fails to read (truncation,
                # corruption) must surface its real error, not be re-parsed
                # as CSV.
                packets = read_trace_binary(args.input)
            else:
                packets = iter(read_trace_csv(args.input))
            count = _write_packets(args.output, packets, args.format, args.chunk_size)
            print(f"converted {count:,} packets to {args.format}: {args.output}")
            return 0
        summary = inspect_trace(args.path)
        for key, value in summary.items():
            if key == "chunk_packets":
                preview = ", ".join(str(v) for v in value[:8])
                more = f", ... ({len(value)} chunks)" if len(value) > 8 else ""
                print(f"{key:>17}: [{preview}{more}]")
            elif isinstance(value, float):
                print(f"{key:>17}: {value:.2f}")
            else:
                print(f"{key:>17}: {value}")
        return 0
    except UnicodeDecodeError:
        print("error: input is neither a binary trace nor CSV text", file=sys.stderr)
        return 1
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "detect":
        return _command_detect(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "distrib":
        return _command_distrib(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
