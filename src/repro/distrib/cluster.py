"""The distributed cluster engine: N switches, one aggregator, one answer.

:class:`DistributedCluster` is an :class:`~repro.core.base.HHHAlgorithm`, so
a :class:`~repro.api.session.Session` drives it exactly like any other
engine.  Internally it simulates the whole deployment:

* the stream is hash-partitioned across the switches with the sharded
  engine's multiplicative key hash (a key lives on exactly one switch, so
  fully-specified lattice nodes merge key-disjoint);
* every ``epoch_batches`` ingested batches, each live switch emits its
  compressed counter state through its transport; delivered messages are
  ingested by the aggregator and acknowledged back (the ack promotes the
  emitted state to the switch's delta base);
* ``output(theta)`` flushes a final epoch and queries the aggregator with
  the per-switch dispatched totals, so any weight the aggregator cannot
  account for - dead switches (``kill`` fault events), dropped messages,
  messages still in flight - widens the error bracket as quantified loss.

Bandwidth is first-class: every transport counts messages and bytes, and
:meth:`DistributedCluster.bandwidth_report` rolls them up against the
spec's per-switch byte budget (the gate ``bench_distrib.py`` enforces).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.specs import ExperimentSpec
from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.batch import coerce_key_array, coerce_weights
from repro.core.faults import FaultPlan
from repro.core.shard import shard_assignments, shard_of_key, spawn_shard_seeds
from repro.distrib.aggregator import Aggregator
from repro.distrib.switch import SwitchNode
from repro.distrib.transport import LoopbackTransport, SimulatedTransport, Transport
from repro.exceptions import ConfigurationError
from repro.hierarchy.base import Hierarchy


class DistributedCluster(HHHAlgorithm):
    """Simulated many-switch deployment behind the one-algorithm interface.

    Args:
        spec: an :class:`~repro.api.specs.ExperimentSpec` with ``distrib``
            set (and ``batch_size``, enforced by the spec).
        hierarchy: the shared hierarchical domain (defaults to building
            ``spec.hierarchy`` from the registry).
        fault_plan: a seeded :class:`~repro.core.faults.FaultPlan` driving
            switch deaths (``kill`` events, ``at_batch`` = ingest batch
            index) and, with the simulated transport, message loss, delay
            and reordering (``net_*`` events, ``at_batch`` = the emitting
            switch's message index).
    """

    name = "distrib"

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        hierarchy: Optional[Hierarchy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        from repro.api.registry import make_hierarchy

        if spec.distrib is None:
            raise ConfigurationError("DistributedCluster needs a spec with distrib set")
        distrib = spec.distrib
        hierarchy_obj = hierarchy if hierarchy is not None else make_hierarchy(spec.hierarchy)
        super().__init__(hierarchy_obj)
        self._distrib = distrib
        self._fault_plan = fault_plan
        self._switches = distrib.switches
        seeds = spawn_shard_seeds(spec.algorithm.seed, distrib.switches)
        self._nodes: List[SwitchNode] = [
            SwitchNode(
                switch,
                spec,
                seeds[switch],
                distrib.switches,
                hierarchy=hierarchy_obj,
                top_k=distrib.top_k,
                delta=distrib.delta,
            )
            for switch in range(distrib.switches)
        ]
        self._transports: List[Transport] = [
            LoopbackTransport()
            if distrib.transport == "loopback"
            else SimulatedTransport(switch=switch, plan=fault_plan)
            for switch in range(distrib.switches)
        ]
        self._aggregator = Aggregator(
            spec.algorithm,
            hierarchy_obj,
            distrib.switches,
            top_k=distrib.top_k,
            partitioned_keys=True,
        )
        self._alive = [True] * distrib.switches
        self._dispatched = [0] * distrib.switches
        self._batch_index = 0
        self._batches_since_epoch = 0
        self._epoch = 0

    # ------------------------------------------------------------------ #
    # stream processing
    # ------------------------------------------------------------------ #

    # The cluster engine is deliberately outside the checkpoint whitelist:
    # specs.py rejects checkpoint_every together with distrib (live switch
    # nodes, transports and in-flight messages cannot be snapshotted), so the
    # epoch/liveness bookkeeping below is pragma-exempted, not whitelisted.
    def _fire_kills(self) -> None:
        if self._fault_plan is None:
            return
        for switch in self._fault_plan.kills_at(self._batch_index):
            if 0 <= switch < self._switches:
                self._alive[switch] = False  # reprolint: ok(checkpoint-drift)

    def _advance_epoch_clock(self) -> None:
        self._batch_index += 1  # reprolint: ok(checkpoint-drift)
        self._batches_since_epoch += 1  # reprolint: ok(checkpoint-drift)
        if self._batches_since_epoch >= self._distrib.epoch_batches:
            self._run_epoch()

    def update(self, key: Hashable, weight: int = 1) -> None:
        """Route one packet to the switch owning its key (per-packet path)."""
        self._fire_kills()
        switch = shard_of_key(key, self._switches)
        self._dispatched[switch] += weight  # reprolint: ok(checkpoint-drift)
        if self._alive[switch]:
            self._nodes[switch].observe_one(key, weight)
        self._total += weight
        self._advance_epoch_clock()

    # Like the sharded engine, the cluster has no scalar twin: its reference
    # is the per-packet update() path, pinned by the distrib parity tests.
    def update_batch(  # reprolint: ok(twin-parity)
        self, keys: Sequence[Hashable], weights: Optional[Sequence[int]] = None
    ) -> None:
        """Hash-partition the batch across the switches, then tick the epoch clock.

        Dispatched weight is recorded for every switch - dead ones included -
        because the loss bracket is precisely "weight routed somewhere the
        aggregator can no longer hear from".
        """
        n = len(keys)
        if n == 0:
            return
        self._fire_kills()
        weights_arr, total_weight = coerce_weights(weights, n)
        for switch, (sub_keys, sub_weights) in enumerate(
            self._partition(keys, weights_arr, n)
        ):
            if len(sub_keys) == 0:
                continue
            sub_weight = int(sub_weights.sum()) if sub_weights is not None else len(sub_keys)
            self._dispatched[switch] += sub_weight
            if self._alive[switch]:
                self._nodes[switch].observe(sub_keys, sub_weights)
        self._total += total_weight
        self._advance_epoch_clock()

    def _partition(
        self, keys: Sequence, weights_arr: Optional[np.ndarray], n: int
    ) -> List[Tuple[Sequence, Optional[np.ndarray]]]:
        """Split a batch into per-switch sub-batches (the sharded engine's rule)."""
        if self._switches == 1:
            return [(keys if isinstance(keys, np.ndarray) else list(keys), weights_arr)]
        assignments = shard_assignments(keys, self._switches)
        if assignments is None:
            buckets: List[List] = [[] for _ in range(self._switches)]
            weight_buckets: List[List[int]] = [[] for _ in range(self._switches)]
            weight_list = weights_arr.tolist() if weights_arr is not None else None
            for i, key in enumerate(keys):
                switch = shard_of_key(key, self._switches)
                buckets[switch].append(key)
                if weight_list is not None:
                    weight_buckets[switch].append(weight_list[i])
            return [
                (
                    bucket,
                    np.asarray(weight_buckets[switch], dtype=np.int64)
                    if weights_arr is not None
                    else None,
                )
                for switch, bucket in enumerate(buckets)
            ]
        keys_arr = coerce_key_array(keys, n)
        parts: List[Tuple[Sequence, Optional[np.ndarray]]] = []
        for switch in range(self._switches):
            picked = np.flatnonzero(assignments == switch)
            parts.append(
                (
                    keys_arr[picked],
                    weights_arr[picked] if weights_arr is not None else None,
                )
            )
        return parts

    # ------------------------------------------------------------------ #
    # the epoch protocol
    # ------------------------------------------------------------------ #

    def _run_epoch(self) -> None:
        """Emit every live switch's state, deliver due messages, send acks."""
        self._epoch += 1  # reprolint: ok(checkpoint-drift)
        self._batches_since_epoch = 0
        for switch, node in enumerate(self._nodes):
            if self._alive[switch]:
                self._transports[switch].send(node.emit(self._epoch))
        self._deliver()

    def _deliver(self) -> None:
        """Tick every transport one delivery epoch; ingest and acknowledge."""
        for transport in self._transports:
            for raw in transport.tick():
                accepted = self._aggregator.ingest(raw)
                if accepted is not None:
                    switch, epoch = accepted
                    self._nodes[switch].handle_ack(epoch)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def output(self, theta: float) -> HHHOutput:
        """Flush a final epoch, then serve the merged global answer.

        Weight still unaccounted for after the flush - dead switches,
        dropped messages, messages scheduled for later delivery epochs -
        stays in the loss bracket; the answer is sound *now*, not after
        some future delivery.
        """
        if self._batches_since_epoch > 0:
            self._run_epoch()
        return self._aggregator.output(
            theta,
            dispatched_totals={
                switch: self._dispatched[switch] for switch in range(self._switches)
            },
        )

    def counters(self) -> int:
        """Total counter objects across the deployment (the memory story)."""
        return sum(node.algorithm.counters() for node in self._nodes)

    def bandwidth_report(self) -> Dict[str, object]:
        """Per-switch and cluster-wide shipped-bytes accounting.

        The per-switch ``budget`` is the spec's ``byte_budget`` (total
        shipped bytes per switch over the whole run); ``over_budget`` lists
        the switches exceeding it.
        """
        budget = self._distrib.byte_budget
        per_switch = []
        for switch, transport in enumerate(self._transports):
            node = self._nodes[switch]
            per_switch.append(
                {
                    "switch": switch,
                    "alive": self._alive[switch],
                    "messages": transport.messages_sent,
                    "bytes": transport.bytes_sent,
                    "dropped": transport.messages_dropped,
                    "in_flight": transport.in_flight,
                    "snapshots": node.snapshots_emitted,
                    "deltas": node.deltas_emitted,
                    "bytes_per_epoch": (
                        transport.bytes_sent / transport.messages_sent
                        if transport.messages_sent
                        else 0.0
                    ),
                }
            )
        over = [
            entry["switch"]
            for entry in per_switch
            if budget is not None and entry["bytes"] > budget
        ]
        return {
            "switches": self._switches,
            "epochs": self._epoch,
            "budget_per_switch": budget,
            "per_switch": per_switch,
            "total_bytes": sum(entry["bytes"] for entry in per_switch),
            "max_switch_bytes": max((entry["bytes"] for entry in per_switch), default=0),
            "over_budget": over,
            "messages_accepted": self._aggregator.messages_accepted,
            "messages_late": self._aggregator.messages_late,
            "deltas_applied": self._aggregator.deltas_applied,
        }

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def switches(self) -> int:
        """Cluster size."""
        return self._switches

    @property
    def epoch(self) -> int:
        """Epochs completed so far."""
        return self._epoch

    @property
    def aggregator(self) -> Aggregator:
        """The receiving end."""
        return self._aggregator

    @property
    def nodes(self) -> List[SwitchNode]:
        """The switch nodes, by id."""
        return list(self._nodes)

    @property
    def transports(self) -> List[Transport]:
        """The per-switch transports, by id."""
        return list(self._transports)

    @property
    def dead_switches(self) -> List[int]:
        """Switches lost to ``kill`` fault events."""
        return [switch for switch, alive in enumerate(self._alive) if not alive]

    def close(self) -> None:
        """Release the switch sessions (no worker processes to reap)."""
        for node in self._nodes:
            node.session.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedCluster(switches={self._switches}, epoch={self._epoch}, "
            f"N={self._total})"
        )
