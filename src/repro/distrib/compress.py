"""Error-bounded lossy compression of shipped counter state.

Two orthogonal reductions keep per-switch bandwidth bounded:

**Top-k truncation** (lossy, error-bounded).  A shipped Space Saving summary
keeps only its ``top_k`` heaviest entries; the dropped tail is folded into
the summary's absent-key floor, so any key the truncation discards is still
charged at least its true count when the aggregator later queries or merges
the summary.  The subtlety is soundness under *merge*: Space Saving's merge
charges absent keys the summary's ``min_count`` (the smallest kept count when
the summary is full, ``0`` otherwise).  A truncated summary with its original
capacity would not be "full" and would under-charge absent keys.  Truncation
therefore also *shrinks the shipped capacity to* ``top_k``: the summary
arrives full, its ``min_count`` is the smallest kept count, which is >= the
largest dropped count, which is >= every dropped key's true count - every
merge path stays an upper bound.  The cost is the usual Space Saving
overestimate growing by at most the largest dropped count per merge, which is
exactly the residual the aggregator's error bracket already absorbs (counter
upper bounds widen, lower bounds never exceed truth).

**Delta encoding** (lossless w.r.t. the truncated summary).  After the
aggregator acknowledges an epoch, the switch remembers the compressed state
it shipped; the next emission sends only the entries that changed and the
keys that fell out, typically a small fraction of ``top_k`` for a skewed
workload in steady state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import WireFormatError


def truncate_counter_state(state: Dict[str, Any], top_k: Optional[int]) -> Dict[str, Any]:
    """Truncate one encoded Space Saving state to its ``top_k`` heaviest entries.

    Returns the state unchanged when ``top_k`` is ``None``, the codec is not
    truncatable (pickle-shipped sketches), or the capacity already fits the
    budget - so lossless shipping stays bit-identical to no compression at
    all.  Otherwise the shipped capacity shrinks to ``top_k`` and the floor
    absorbs the largest dropped count (the soundness rule in the module
    docstring).
    """
    if top_k is None or state.get("codec") != "space_saving":
        return state
    capacity = int(state["capacity"])
    if capacity <= top_k:
        return state
    entries = state["entries"]
    # canonical heaviness order: count descending, key ascending for ties -
    # the same tiebreak the merge protocol uses, so every switch truncates
    # identically.
    ranked = sorted(entries, key=lambda entry: (-entry[1], entry[0] if entry[0] is not None else 0))
    kept = ranked[: int(top_k)]
    dropped = ranked[int(top_k) :]
    floor = int(state["absent_floor"])
    if dropped:
        floor = max(floor, max(int(count) for _, count, _ in dropped))
    kept_ascending = list(reversed(kept))
    kept_keys = {key for key, _, _ in kept}
    return {
        "codec": "space_saving",
        "capacity": int(top_k),
        "total": int(state["total"]),
        "entries": kept_ascending,
        "absent_floor": floor,
        "order": [key for key in state.get("order", []) if key in kept_keys],
    }


def is_delta_capable(states: List[Dict[str, Any]]) -> bool:
    """Delta encoding needs every node on the entries codec."""
    return all(state.get("codec") == "space_saving" for state in states)


def delta_encode(
    state: Dict[str, Any], base: Dict[str, Any]
) -> Dict[str, Any]:
    """Encode one node's state as changes against the last acked state.

    Lossless with respect to the (already truncated) snapshot: applying the
    delta to ``base`` with :func:`delta_decode` reproduces ``state``'s
    entries, floor and total exactly.  Internal bucket order is *not*
    shipped; the aggregator's merge canonicalises entry order anyway, so the
    reconstruction sorts entries by ``(count, key)`` ascending.
    """
    if state.get("codec") != "space_saving" or base.get("codec") != "space_saving":
        raise WireFormatError("delta encoding needs the space_saving codec on both sides")
    base_map = {key: (int(count), int(error)) for key, count, error in base["entries"]}
    changed: List[Tuple[Any, int, int]] = []
    current_keys = set()
    for key, count, error in state["entries"]:
        current_keys.add(key)
        if base_map.get(key) != (int(count), int(error)):
            changed.append((key, int(count), int(error)))
    removed = [key for key in base_map if key not in current_keys]
    return {
        "codec": "ss_delta",
        "capacity": int(state["capacity"]),
        "total": int(state["total"]),
        "absent_floor": int(state["absent_floor"]),
        "changed": changed,
        "removed": removed,
    }


def delta_decode(delta: Dict[str, Any], base: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a delta to the last acked state, reproducing the full snapshot."""
    if delta.get("codec") != "ss_delta":
        raise WireFormatError(f"expected an ss_delta state, got codec {delta.get('codec')!r}")
    if base.get("codec") != "space_saving":
        raise WireFormatError("delta messages need a space_saving base state to apply against")
    merged = {key: (int(count), int(error)) for key, count, error in base["entries"]}
    for key in delta["removed"]:
        merged.pop(key, None)
    for key, count, error in delta["changed"]:
        merged[key] = (int(count), int(error))
    entries = sorted(
        ((key, count, error) for key, (count, error) in merged.items()),
        key=lambda entry: (entry[1], entry[0] if entry[0] is not None else 0),
    )
    return {
        "codec": "space_saving",
        "capacity": int(delta["capacity"]),
        "total": int(delta["total"]),
        "entries": entries,
        "absent_floor": int(delta["absent_floor"]),
        "order": [key for key, _, _ in entries],
    }
