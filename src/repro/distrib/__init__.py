"""The distributed aggregation tier: many switches, one answer, bounded bandwidth.

The fleet-scale deployment the ROADMAP's north star asks for, simulated
end-to-end: per-switch :class:`~repro.distrib.switch.SwitchNode`\\ s run
proportionally-sized local replicas and periodically ship compressed counter
state as versioned wire messages (:mod:`repro.distrib.wire`, framed in the
checkpoint layer's checksummed container) over a
:class:`~repro.distrib.transport.Transport` (reliable loopback, or a seeded
fault-plan-driven lossy queue); an :class:`~repro.distrib.aggregator.Aggregator`
merges the contributions with the counter ``merge()`` protocol and serves
the global ``output(theta)`` with bounds widened by quantified loss.
:class:`~repro.distrib.cluster.DistributedCluster` packages the whole
deployment behind the ordinary algorithm interface, so a
:class:`~repro.api.session.Session` with ``ExperimentSpec(distrib=...)``
drives a 100-switch fleet the same way it drives one instance.
"""

from repro.distrib.aggregator import Aggregator
from repro.distrib.cluster import DistributedCluster
from repro.distrib.switch import SwitchNode, switch_experiment_spec
from repro.distrib.transport import LoopbackTransport, SimulatedTransport, Transport
from repro.distrib.wire import (
    WIRE_VERSION,
    algorithm_geometry,
    decode_message,
    encode_message,
)

__all__ = [
    "Aggregator",
    "DistributedCluster",
    "LoopbackTransport",
    "SimulatedTransport",
    "SwitchNode",
    "Transport",
    "WIRE_VERSION",
    "algorithm_geometry",
    "decode_message",
    "encode_message",
    "switch_experiment_spec",
]
