"""Transports carrying wire messages from switches to the aggregator.

Two simulated transports share one interface: :meth:`Transport.send` accepts
framed wire bytes, :meth:`Transport.tick` advances one delivery epoch and
returns the payloads that arrive in it.  Both count messages and bytes, so
the cluster's bandwidth report reads straight off the transport.

:class:`LoopbackTransport` is the reliable in-process reference: every
message sent during an epoch is delivered, in order, on the next tick.  The
lockstep guarantee (loopback aggregate bit-identical to a single merged
engine) is proved against it.

:class:`SimulatedTransport` models a lossy queue/socket: a shared, seeded
:class:`~repro.core.faults.FaultPlan` is consulted per send using the
per-switch *message index* - ``net_drop`` discards the message, ``net_delay``
holds it back a scheduled number of delivery epochs, ``net_reorder`` nudges
it behind the next message in the same delivery epoch.  The same plan drives
every switch's transport (events are matched on their ``shard`` field), so
one seed reproduces an entire cluster's loss pattern.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.faults import FaultPlan


class Transport:
    """Base transport: counters plus the send/tick interface."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0

    def send(self, payload: bytes) -> None:
        raise NotImplementedError

    def tick(self) -> List[bytes]:
        """Advance one delivery epoch; return the payloads arriving in it."""
        raise NotImplementedError

    @property
    def in_flight(self) -> int:
        """Messages accepted but not yet delivered (nor dropped)."""
        return self.messages_sent - self.messages_delivered - self.messages_dropped


class LoopbackTransport(Transport):
    """Reliable, ordered, in-process delivery: sent this epoch, delivered next tick."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: List[bytes] = []

    def send(self, payload: bytes) -> None:
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        self._queue.append(payload)

    def tick(self) -> List[bytes]:
        due, self._queue = self._queue, []
        self.messages_delivered += len(due)
        return due


class SimulatedTransport(Transport):
    """A lossy, delaying, reordering queue driven by a seeded fault plan.

    Args:
        switch: the emitting switch's id; plan events are matched on it.
        plan: the shared network :class:`FaultPlan` (``None`` degrades to
            reliable delivery, with the counters still live).
    """

    def __init__(self, *, switch: int, plan: Optional[FaultPlan] = None) -> None:
        super().__init__()
        self._switch = int(switch)
        self._plan = plan
        self._now = 0
        self._message_index = 0
        # (deliver_at_epoch, sequence, payload); sequence keeps heap order
        # deterministic and is what a reorder event perturbs.
        self._heap: List[Tuple[int, float, bytes]] = []

    def send(self, payload: bytes) -> None:
        index = self._message_index
        self._message_index += 1
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        deliver_at = self._now + 1
        sequence = float(index)
        if self._plan is not None:
            if self._plan.events_at(index, "net_drop", shard=self._switch):
                self.messages_dropped += 1
                return
            for event in self._plan.events_at(index, "net_delay", shard=self._switch):
                deliver_at += max(1, int(event.seconds))
            if self._plan.events_at(index, "net_reorder", shard=self._switch):
                # swap behind the next message of the same delivery epoch.
                sequence = float(index) + 1.5
        heapq.heappush(self._heap, (deliver_at, sequence, payload))

    def tick(self) -> List[bytes]:
        self._now += 1
        due: List[bytes] = []
        while self._heap and self._heap[0][0] <= self._now:
            due.append(heapq.heappop(self._heap)[2])
        self.messages_delivered += len(due)
        return due
