"""The aggregator: merges epoch-aligned switch contributions into one answer.

The receiving half of the distributed tier.  An :class:`Aggregator` holds,
per switch, the most recent contribution it accepted (decoded wire state, as
plain data); :meth:`Aggregator.output` materialises counter summaries from
those states, reduces them with the same ``merge()`` protocol the sharded
engine uses, and runs the algorithm's Output on the merged state.

Loss accounting maps directly onto the degrade-policy bracket: any weight
the cluster dispatched to a switch that the aggregator's stored contribution
does not account for - because the switch died, its message was dropped or
is still in flight, or it simply has not emitted since - is treated exactly
like a degraded shard's loss: the global ``N`` still counts it, every
conditioned estimate and candidate upper bound is widened by it, and a
per-switch :class:`~repro.core.supervise.ShardLoss` report rides along on
``failed_shards``.  Bounds therefore stay sound (lower <= true <= upper)
under switch loss, message loss *and* lossy compression: truncation only
ever raises upper bounds (the folded residual) and never raises lower
bounds above truth.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.api.specs import AlgorithmSpec
from repro.core.base import HHHOutput
from repro.core.output import OutputCache
from repro.core.shard import per_shard_algorithm_spec
from repro.core.supervise import ShardLoss
from repro.distrib import compress, wire
from repro.exceptions import AlgorithmError, ConfigurationError, WireFormatError
from repro.hh.base import FrequencyEstimator
from repro.hierarchy.base import Hierarchy


class Aggregator:
    """Merges switch contributions and serves the global ``output(theta)``.

    Args:
        algorithm: the cluster-level algorithm spec; the aggregator builds a
            replica-shaped template from it (same per-switch sizing as the
            switches, so merged capacities line up).
        hierarchy: the shared hierarchical domain.
        switches: cluster size.
        top_k: the compression policy in force, part of the expected wire
            geometry (a differently-compressed peer is incompatible).
        partitioned_keys: ``True`` when the cluster hash-partitions keys
            across switches (each key lives on exactly one switch), enabling
            the key-disjoint merge at fully-specified lattice nodes; pass
            ``False`` for replicated/overlapping streams to force the
            generic summed-bound merge everywhere.
    """

    def __init__(
        self,
        algorithm: AlgorithmSpec,
        hierarchy: Hierarchy,
        switches: int,
        *,
        top_k: Optional[int] = None,
        partitioned_keys: bool = True,
    ) -> None:
        from repro.api.registry import build_algorithm

        if not isinstance(switches, int) or isinstance(switches, bool) or switches < 1:
            raise ConfigurationError(f"switches must be a positive integer, got {switches!r}")
        self._switches = switches
        self._hierarchy = hierarchy
        self._template = build_algorithm(
            per_shard_algorithm_spec(algorithm, algorithm.seed, switches), hierarchy
        )
        if not hasattr(self._template, "_counters"):
            raise ConfigurationError(
                f"algorithm {algorithm.name!r} keeps no per-node counter lattice; "
                "the distributed tier supports the lattice algorithms (rhhh, mst, sampled_mst)"
            )
        probe = self._template._counters[0]
        if type(probe).merge is FrequencyEstimator.merge:
            raise ConfigurationError(
                f"counter backend {type(probe).__name__} does not implement merge(); "
                "pick a mergeable backend (space_saving, array_space_saving, "
                "misra_gries, count_min, count_sketch)"
            )
        self._expected_geometry = wire.algorithm_geometry(self._template, hierarchy, top_k=top_k)
        self._node_disjoint = [
            partitioned_keys and hierarchy.node_level(node) == 0
            for node in range(hierarchy.size)
        ]
        #: per switch: the newest accepted contribution, as plain wire state.
        self._contributions: Dict[int, Dict[str, Any]] = {}
        self.messages_accepted = 0
        self.messages_late = 0
        self.deltas_applied = 0
        # Incremental-query plumbing.  The merge is cached wholesale, keyed
        # on the exact (switch, epoch) contribution set it was built from;
        # per-switch decoded counter objects are kept as merge *arguments*
        # (merge never mutates its argument) and dropped the moment a newer
        # contribution from that switch is accepted.  ``_merge_clock`` stamps
        # each rebuild so the template's incremental output pass sees every
        # node dirty exactly when the merged lattice changed.  Set
        # ``_query_cache = None`` to force the from-scratch reference path.
        self._decoded: Dict[int, List] = {}
        self._merge_cache: Optional[Tuple[tuple, List, int]] = None
        self._merge_clock = 0
        self._query_versions: List[int] = [0] * hierarchy.size
        self._query_cache: Optional[OutputCache] = OutputCache()

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    @property
    def switches(self) -> int:
        return self._switches

    @property
    def expected_geometry(self) -> Dict[str, Any]:
        """The wire geometry this aggregator accepts."""
        return dict(self._expected_geometry)

    def contribution_epoch(self, switch: int) -> Optional[int]:
        """The epoch of the stored contribution of ``switch`` (``None`` if none)."""
        stored = self._contributions.get(switch)
        return None if stored is None else stored["epoch"]

    def ingest(self, raw: bytes) -> Optional[Tuple[int, int]]:
        """Verify, decode and store one wire message.

        Returns ``(switch, epoch)`` when the message was accepted (the
        cluster acknowledges it back to the switch), ``None`` when it was
        late - older than, or a duplicate of, the stored contribution
        (reordered delivery; counted, not an error).

        Raises:
            WireFormatError: broken framing/schema, a delta whose base the
                aggregator does not hold, or a switch id outside the cluster.
            WireCompatibilityError: the message's geometry or protocol
                version does not match this aggregator.
        """
        message = wire.decode_message(raw)
        wire.check_geometry(self._expected_geometry, message["geometry"])
        switch = int(message["switch"])
        if not 0 <= switch < self._switches:
            raise WireFormatError(
                f"wire message names switch {switch}, cluster has {self._switches} switches"
            )
        epoch = int(message["epoch"])
        stored = self._contributions.get(switch)
        if stored is not None and epoch <= stored["epoch"]:
            self.messages_late += 1
            return None
        nodes = message["nodes"]
        if len(nodes) != len(self._template._counters):
            raise WireFormatError(
                f"wire message carries {len(nodes)} node states, "
                f"lattice has {len(self._template._counters)} nodes"
            )
        if message["kind"] == wire.KIND_DELTA:
            base_epoch = int(message["base_epoch"])
            if stored is None or stored["epoch"] != base_epoch:
                held = None if stored is None else stored["epoch"]
                raise WireFormatError(
                    f"delta from switch {switch} is based on epoch {base_epoch}, "
                    f"aggregator holds epoch {held}"
                )
            nodes = [
                compress.delta_decode(delta, base)
                for delta, base in zip(nodes, stored["nodes"])
            ]
            self.deltas_applied += 1
        self._contributions[switch] = {
            "epoch": epoch,
            "total": int(message["total"]),
            "nodes": nodes,
        }
        self._decoded.pop(switch, None)
        self.messages_accepted += 1
        return switch, epoch

    # ------------------------------------------------------------------ #
    # the merge reduction and the global query
    # ------------------------------------------------------------------ #

    def merged_counters(self) -> Tuple[List, int]:
        """Materialise and reduce the stored contributions.

        Counter objects are rebuilt fresh from the stored wire states on
        every call (merge mutates its target), reduced in switch-id order -
        the same deterministic order as the sharded engine's serial merge.
        Returns ``(counters, accounted_total)``.
        """
        order = sorted(self._contributions)
        if not order:
            raise AlgorithmError(
                "the aggregator holds no switch contributions; nothing was "
                "delivered (or every emission was lost)"
            )
        first = self._contributions[order[0]]
        merged = [wire.decode_counter_state(state) for state in first["nodes"]]
        total = first["total"]
        for switch in order[1:]:
            contribution = self._contributions[switch]
            total += contribution["total"]
            for node, state in enumerate(contribution["nodes"]):
                merged[node].merge(
                    wire.decode_counter_state(state), disjoint=self._node_disjoint[node]
                )
        return merged, total

    def _merged_counters_cached(self) -> Tuple[List, int]:
        """Incremental twin of :meth:`merged_counters`.

        Short-circuits on the contribution signature: back-to-back queries
        with no accepted message in between reuse the previous merge (and
        hence the previous output pass's cached state) outright.  A re-merge
        decodes the first switch fresh (it becomes the mutated merge target)
        but reuses the cached decodes of the other switches as merge
        arguments, then bumps the merge clock so every node reads as dirty.
        Value-identical to :meth:`merged_counters`: same decode, same merge
        order, same disjointness flags.
        """
        signature = tuple(
            sorted((switch, state["epoch"]) for switch, state in self._contributions.items())
        )
        cached = self._merge_cache
        if cached is not None and cached[0] == signature:
            return cached[1], cached[2]
        order = sorted(self._contributions)
        if not order:
            raise AlgorithmError(
                "the aggregator holds no switch contributions; nothing was "
                "delivered (or every emission was lost)"
            )
        first = self._contributions[order[0]]
        merged = [wire.decode_counter_state(state) for state in first["nodes"]]
        total = first["total"]
        for switch in order[1:]:
            contribution = self._contributions[switch]
            total += contribution["total"]
            decoded = self._decoded.get(switch)
            if decoded is None:
                decoded = [wire.decode_counter_state(state) for state in contribution["nodes"]]
                self._decoded[switch] = decoded
            for node, counter in enumerate(decoded):
                merged[node].merge(counter, disjoint=self._node_disjoint[node])
        self._merge_cache = (signature, merged, total)
        self._merge_clock += 1
        self._query_versions = [self._merge_clock] * len(self._query_versions)
        return merged, total

    def output(
        self, theta: float, *, dispatched_totals: Optional[Dict[int, int]] = None
    ) -> HHHOutput:
        """Merge the cluster and run the algorithm's Output on the result.

        ``dispatched_totals`` maps each switch to the weight the cluster
        actually routed to it; any excess over what the stored contributions
        account for is quantified loss, widening the bracket exactly like
        the degrade policy (see the module docstring).  Without it the
        aggregator trusts the contributions alone (loss invisible to it is
        then unaccounted - the cluster always passes the totals).

        Queries run incrementally by default (``_query_cache = None`` forces
        the from-scratch reference path): an unchanged contribution set
        reuses the previous merge and the output pass's cached per-node
        state.  Every hijacked template attribute - counters, total,
        correction, version/cache pair - is restored afterwards, so the
        template is never left holding merged state between queries.
        """
        incremental = self._query_cache is not None
        if incremental:
            merged, accounted = self._merged_counters_cached()
        else:
            merged, accounted = self.merged_counters()
        losses: List[ShardLoss] = []
        lost = 0
        if dispatched_totals:
            for switch in sorted(dispatched_totals):
                dispatched = int(dispatched_totals[switch])
                stored = self._contributions.get(switch)
                held = stored["total"] if stored is not None else 0
                missing = dispatched - held
                if missing > 0:
                    lost += missing
                    losses.append(
                        ShardLoss(
                            shard=switch,
                            lost_packets=missing,
                            exitcode=None,
                            at_batch=None if stored is None else stored["epoch"],
                            reason=(
                                "no contribution ever delivered"
                                if stored is None
                                else f"last contribution at epoch {stored['epoch']}"
                            ),
                        )
                    )
        template = self._template
        saved_counters = template._counters
        saved_total = template._total
        saved_versions = getattr(template, "_versions", None)
        saved_cache = getattr(template, "_output_cache", None)
        has_cache_attrs = saved_versions is not None
        template._counters = merged
        template._total = accounted + lost
        template.extra_correction = float(lost)
        if has_cache_attrs:
            if incremental:
                template._versions = self._query_versions
                template._output_cache = self._query_cache
            else:
                template._output_cache = None
        try:
            result = template.output(theta)
        finally:
            template.extra_correction = 0.0
            template._counters = saved_counters
            template._total = saved_total
            if has_cache_attrs:
                template._versions = saved_versions
                template._output_cache = saved_cache
        if lost:
            result.candidates = [
                dataclasses.replace(candidate, upper_bound=candidate.upper_bound + lost)
                for candidate in result.candidates
            ]
        result.failed_shards = losses
        return result
