"""The per-switch half of the distributed tier: local state, periodic emission.

A :class:`SwitchNode` is one simulated vswitch: it wraps a
:class:`~repro.api.session.Session` running a proportionally-sized replica of
the experiment's algorithm (same per-replica sizing rule as the sharded
engine, so an ``N``-switch deployment stays inside the single-deployment
memory envelope), observes the sub-stream of keys routed to it, and once per
epoch emits its counter state as a framed wire message - compressed by the
policy in force (top-k truncation, delta encoding against the last epoch the
aggregator acknowledged).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.api.session import Session
from repro.api.specs import ExperimentSpec
from repro.core.shard import per_shard_algorithm_spec
from repro.distrib import compress, wire
from repro.exceptions import ConfigurationError


def switch_experiment_spec(
    spec: ExperimentSpec, seed: Optional[int], switches: int
) -> ExperimentSpec:
    """The spec one switch's local session is built from.

    The switch runs a plain single-instance replica: its algorithm gets the
    spawned per-switch seed and the divided memory budget (the sharded
    engine's sizing rule), and every orchestration concern of the original
    spec - sharding, the distrib tier itself, checkpointing, trace ingest -
    is stripped, because the cluster feeds the switch its key sub-stream
    directly.
    """
    return dataclasses.replace(
        spec,
        algorithm=per_shard_algorithm_spec(spec.algorithm, seed, switches),
        shards=None,
        distrib=None,
        checkpoint_every=None,
        checkpoint_path=None,
        trace=None,
        ingest=None,
    )


class SwitchNode:
    """One simulated vswitch: a local Session plus the emission protocol.

    Args:
        switch_id: this switch's id in the cluster (the wire ``switch`` field).
        spec: the cluster-level experiment spec.
        seed: this switch's spawned RNG seed.
        switches: cluster size (drives the per-replica memory division).
        hierarchy: the shared hierarchical domain instance.
        top_k: per-node truncation limit shipped state is compressed to.
        delta: delta-encode against the last acked epoch when possible.
    """

    def __init__(
        self,
        switch_id: int,
        spec: ExperimentSpec,
        seed: Optional[int],
        switches: int,
        *,
        hierarchy,
        top_k: Optional[int] = None,
        delta: bool = True,
    ) -> None:
        self._id = int(switch_id)
        self._top_k = top_k
        self._delta = bool(delta)
        self._session = Session(switch_experiment_spec(spec, seed, switches), hierarchy=hierarchy)
        algorithm = self._session.algorithm
        if not hasattr(algorithm, "_counters"):
            raise ConfigurationError(
                f"algorithm {spec.algorithm.name!r} keeps no per-node counter lattice; "
                "the distributed tier ships lattice algorithms (rhhh, mst, sampled_mst)"
            )
        self._geometry = wire.algorithm_geometry(algorithm, hierarchy, top_k=top_k)
        #: compressed node states of epochs emitted but not yet acked.
        self._pending: Dict[int, List[Dict[str, Any]]] = {}
        #: the last state the aggregator confirmed holding - the delta base.
        self._acked_epoch: Optional[int] = None
        self._acked_states: Optional[List[Dict[str, Any]]] = None
        self.snapshots_emitted = 0
        self.deltas_emitted = 0

    # ------------------------------------------------------------------ #
    # local stream
    # ------------------------------------------------------------------ #

    @property
    def switch_id(self) -> int:
        return self._id

    @property
    def session(self) -> Session:
        """The switch's local measurement session."""
        return self._session

    @property
    def algorithm(self):
        return self._session.algorithm

    @property
    def total(self) -> int:
        """Packets this switch has observed locally."""
        return self._session.algorithm.total

    @property
    def geometry(self) -> Dict[str, Any]:
        """The wire geometry this switch stamps on every message."""
        return dict(self._geometry)

    def observe(self, keys: Sequence, weights=None) -> None:
        """Feed a batch of this switch's sub-stream into the local algorithm."""
        self._session.algorithm.update_batch(keys, weights)

    def observe_one(self, key, weight: int = 1) -> None:
        """Feed one packet (the per-packet route)."""
        self._session.algorithm.update(key, weight)

    # ------------------------------------------------------------------ #
    # emission protocol
    # ------------------------------------------------------------------ #

    def emit(self, epoch: int) -> bytes:
        """Frame this epoch's emission: compressed snapshot, or delta if possible.

        The compressed (post-truncation) states are remembered under
        ``epoch`` so a later acknowledgement can promote them to the delta
        base - deltas are always computed against state the aggregator
        confirmed holding, never against an emission that may have been
        lost in flight.
        """
        algorithm = self._session.algorithm
        states = [wire.encode_counter_state(counter) for counter in algorithm._counters]
        compressed = [compress.truncate_counter_state(state, self._top_k) for state in states]
        self._pending[int(epoch)] = compressed
        if (
            self._delta
            and self._acked_states is not None
            and compress.is_delta_capable(compressed)
            and compress.is_delta_capable(self._acked_states)
        ):
            nodes = [
                compress.delta_encode(state, base)
                for state, base in zip(compressed, self._acked_states)
            ]
            self.deltas_emitted += 1
            return wire.encode_message(
                kind=wire.KIND_DELTA,
                switch=self._id,
                epoch=epoch,
                base_epoch=self._acked_epoch,
                geometry=self._geometry,
                total=algorithm.total,
                nodes=nodes,
            )
        self.snapshots_emitted += 1
        return wire.encode_message(
            kind=wire.KIND_SNAPSHOT,
            switch=self._id,
            epoch=epoch,
            geometry=self._geometry,
            total=algorithm.total,
            nodes=compressed,
        )

    def handle_ack(self, epoch: int) -> None:
        """The aggregator confirmed holding ``epoch``; it becomes the delta base."""
        epoch = int(epoch)
        states = self._pending.get(epoch)
        if states is None:
            return
        self._acked_epoch = epoch
        self._acked_states = states
        # Anything at or before the acked epoch can never become a base.
        self._pending = {e: s for e, s in self._pending.items() if e > epoch}
