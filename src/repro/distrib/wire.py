"""Versioned wire messages of the distributed aggregation tier.

A switch periodically ships its counter state to the aggregator as one
message per epoch: either a full **snapshot** or a **delta** against the last
epoch the aggregator acknowledged.  Messages ride inside the same
checksummed container the checkpoint layer writes to disk
(:func:`repro.core.checkpoint.pack_payload` - magic, format version, payload
length, SHA-256), so a truncated or corrupted message is rejected at the
framing layer before any of its content is trusted.

Inside the container, a message is a plain dict::

    {
        "format": "distrib-wire",
        "wire_version": 1,
        "kind": "snapshot" | "delta",
        "switch": <emitting switch id>,
        "epoch": <emission epoch>,
        "base_epoch": <acked epoch a delta is computed against, or None>,
        "geometry": {...},      # see algorithm_geometry()
        "total": <switch's cumulative packet count>,
        "nodes": [<per-lattice-node counter state or delta>, ...],
    }

The **geometry** block fingerprints everything a merge silently depends on -
hierarchy shape, lattice width, counter backend and its capacity, the
compression policy - so an aggregator built for a different configuration
rejects the message with a typed
:class:`~repro.exceptions.WireCompatibilityError` instead of merging
incompatible summaries (the cross-version compatibility contract the
property tests pin).

Per-node counter state uses the Space Saving entries codec where possible
(``(key, count, error)`` triples plus the absent-key floor - the form the
compression layer truncates and delta-encodes); any other mergeable backend
(the sketches, Misra-Gries) is carried whole via the pickle codec.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import pack_payload, unpack_payload
from repro.exceptions import CheckpointError, WireCompatibilityError, WireFormatError
from repro.hh.space_saving import SpaceSaving
from repro.hierarchy.base import Hierarchy

#: Wire protocol version; bumped on any incompatible message-schema change.
WIRE_VERSION = 1

#: The ``format`` tag distinguishing wire messages from checkpoint payloads.
WIRE_FORMAT = "distrib-wire"

#: Message kinds.
KIND_SNAPSHOT = "snapshot"
KIND_DELTA = "delta"


# --------------------------------------------------------------------------- #
# per-node counter state codec
# --------------------------------------------------------------------------- #


def encode_counter_state(counter: Any) -> Dict[str, Any]:
    """Snapshot one counter summary as plain wire data.

    Space Saving summaries (either implementation) become the entries codec -
    the compressible, delta-encodable form; anything else is shipped whole
    via pickle (it still merges at the aggregator, it just cannot be
    truncated).
    """
    if (
        hasattr(counter, "_entries")
        and hasattr(counter, "_absent_floor")
        and hasattr(counter, "capacity")
    ):
        return {
            "codec": "space_saving",
            "capacity": int(counter.capacity),
            "total": int(counter.total),
            # ascending-count order, the order _rebuild consumes.
            "entries": [(key, int(count), int(error)) for key, count, error in counter._entries()],
            "absent_floor": int(counter._absent_floor),
            # iteration order, preserved so a decoded summary is
            # indistinguishable from the live one (the lockstep guarantee).
            "order": list(counter),
        }
    return {"codec": "pickle", "blob": copy.deepcopy(counter)}


def decode_counter_state(state: Dict[str, Any]) -> Any:
    """Materialise a counter summary from its wire state.

    The entries codec always rebuilds the linked-bucket
    :class:`~repro.hh.space_saving.SpaceSaving` - the canonical receiver-side
    representation; its merge is cross-implementation, so summaries shipped
    from array-backed switches fold in identically.  Returns a fresh object
    the caller may mutate (merge into) freely.
    """
    codec = state.get("codec")
    if codec == "pickle":
        return copy.deepcopy(state["blob"])
    if codec != "space_saving":
        raise WireFormatError(f"unknown counter codec {codec!r} in wire message")
    summary = SpaceSaving(capacity=int(state["capacity"]))
    summary._rebuild(
        [(key, count, error) for key, count, error in state["entries"]], int(state["total"])
    )
    order = state.get("order")
    if order is not None and len(order) == len(summary._where):
        summary._where = {key: summary._where[key] for key in order}
    summary._absent_floor = int(state["absent_floor"])
    return summary


# --------------------------------------------------------------------------- #
# geometry fingerprinting
# --------------------------------------------------------------------------- #


def algorithm_geometry(
    algorithm: Any, hierarchy: Hierarchy, *, top_k: Optional[int] = None
) -> Dict[str, Any]:
    """Fingerprint the merge-relevant shape of a lattice algorithm.

    Two parties can merge counter summaries only if these fields all agree:
    the hierarchy shape (same lattice, same node indexing), the number of
    per-node counters, the counter backend and its geometry (capacity for the
    tables, depth x width for the sketches), and the compression policy
    (truncation changes the shipped capacity).  ``top_k`` is the truncation
    limit in force, ``None`` for lossless shipping.
    """
    counters = getattr(algorithm, "_counters", None)
    if not counters:
        raise WireFormatError(
            f"{type(algorithm).__name__} keeps no per-node counter lattice; "
            "the distributed tier ships lattice algorithms (rhhh, mst, sampled_mst)"
        )
    probe = counters[0]
    geometry: Dict[str, Any] = {
        "algorithm": type(algorithm).__name__,
        "hierarchy_size": int(hierarchy.size),
        "hierarchy_depth": int(hierarchy.depth),
        "dimensions": int(hierarchy.dimensions),
        "nodes": len(counters),
        "counter": type(probe).__name__,
        "top_k": top_k,
    }
    capacity = getattr(probe, "capacity", None)
    if capacity is not None:
        shipped = int(capacity)
        if top_k is not None:
            shipped = min(shipped, int(top_k))
        geometry["capacity"] = shipped
    width = getattr(probe, "_width", None)
    depth = getattr(probe, "_depth", None)
    if width is not None and depth is not None:
        geometry["sketch"] = (int(depth), int(width))
    return geometry


def check_geometry(expected: Dict[str, Any], got: Dict[str, Any]) -> None:
    """Raise a typed error naming every field on which two geometries differ."""
    mismatches: Dict[str, Tuple[Any, Any]] = {}
    for field in sorted(set(expected) | set(got)):
        if expected.get(field) != got.get(field):
            mismatches[field] = (expected.get(field), got.get(field))
    if mismatches:
        detail = ", ".join(
            f"{field}: expected {exp!r}, got {val!r}"
            for field, (exp, val) in sorted(mismatches.items())
        )
        raise WireCompatibilityError(
            f"wire message geometry does not match this aggregator ({detail}); "
            "rebuild both ends from the same experiment spec",
            mismatches=mismatches,
        )


# --------------------------------------------------------------------------- #
# message encode/decode
# --------------------------------------------------------------------------- #


def encode_message(
    *,
    kind: str,
    switch: int,
    epoch: int,
    geometry: Dict[str, Any],
    total: int,
    nodes: List[Dict[str, Any]],
    base_epoch: Optional[int] = None,
) -> bytes:
    """Frame one wire message as container bytes ready for a transport."""
    if kind not in (KIND_SNAPSHOT, KIND_DELTA):
        raise WireFormatError(f"unknown wire message kind {kind!r}")
    if kind == KIND_DELTA and base_epoch is None:
        raise WireFormatError("delta messages need the base_epoch they are computed against")
    message = {
        "format": WIRE_FORMAT,
        "wire_version": WIRE_VERSION,
        "kind": kind,
        "switch": int(switch),
        "epoch": int(epoch),
        "base_epoch": None if base_epoch is None else int(base_epoch),
        "geometry": dict(geometry),
        "total": int(total),
        "nodes": nodes,
    }
    return pack_payload(message, label="wire message")


def decode_message(raw: bytes) -> Dict[str, Any]:
    """Verify and open a wire message.

    Raises:
        WireFormatError: the container framing fails (truncation, bad magic,
            checksum) or the schema inside is not a wire message.
        WireCompatibilityError: the message is well formed but speaks a
            different wire protocol version.
    """
    try:
        message = unpack_payload(raw, label="wire message")
    except CheckpointError as exc:
        raise WireFormatError(str(exc)) from exc
    if message.get("format") != WIRE_FORMAT:
        raise WireFormatError(
            f"payload is not a distrib wire message (format={message.get('format')!r})"
        )
    version = message.get("wire_version")
    if version != WIRE_VERSION:
        raise WireCompatibilityError(
            f"wire message speaks protocol version {version!r}, "
            f"this aggregator speaks {WIRE_VERSION}",
            mismatches={"wire_version": (WIRE_VERSION, version)},
        )
    if message.get("kind") not in (KIND_SNAPSHOT, KIND_DELTA):
        raise WireFormatError(f"unknown wire message kind {message.get('kind')!r}")
    for field in ("switch", "epoch", "geometry", "total", "nodes"):
        if field not in message:
            raise WireFormatError(f"wire message is missing its {field!r} field")
    if message["kind"] == KIND_DELTA and message.get("base_epoch") is None:
        raise WireFormatError("delta wire message carries no base_epoch")
    if not isinstance(message["nodes"], list):
        raise WireFormatError("wire message nodes field must be a list of counter states")
    return message
