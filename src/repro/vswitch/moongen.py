"""MoonGen-like traffic generation for the switch experiments.

The paper's testbed generates 1 billion 64-byte UDP packets with MoonGen,
preserving the addresses of the original trace, which saturates a 10 GbE link
at 14.88 Mpps.  :class:`TrafficGenerator` reproduces the functional part
(packets with trace-driven addresses and a fixed frame size) and exposes the
offered rate so throughput experiments can reason about line-rate limits.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import SwitchError
from repro.traffic.caida_like import BackboneTraceGenerator
from repro.traffic.packet import Packet

#: Line rate of 10 Gb Ethernet with 64-byte frames (the paper's cap), in Mpps.
LINE_RATE_64B_MPPS = 14.88


def line_rate_mpps(link_gbps: float, frame_bytes: int = 64) -> float:
    """Maximum packet rate of an Ethernet link, in millions of packets per second.

    Accounts for the 20 bytes of preamble + inter-frame gap and the 4-byte FCS
    that accompany every frame on the wire.

    >>> round(line_rate_mpps(10, 64), 2)
    14.88
    """
    if link_gbps <= 0 or frame_bytes < 64:
        raise SwitchError("link_gbps must be positive and frame_bytes >= 64")
    bits_per_frame = (frame_bytes + 20) * 8
    return link_gbps * 1e9 / bits_per_frame / 1e6


class TrafficGenerator:
    """Generate fixed-size packets whose addresses follow a backbone workload.

    Args:
        workload: the address source (any object with a ``packets(count)``
            iterator); defaults to a small synthetic backbone trace.
        frame_bytes: frame size of every generated packet (64 in the paper).
        offered_mpps: the offered load the generator represents.
    """

    def __init__(
        self,
        workload: Optional[BackboneTraceGenerator] = None,
        *,
        frame_bytes: int = 64,
        offered_mpps: float = LINE_RATE_64B_MPPS,
        seed: Optional[int] = None,
    ) -> None:
        if frame_bytes < 64:
            raise SwitchError(f"frame_bytes must be >= 64, got {frame_bytes}")
        if offered_mpps <= 0:
            raise SwitchError(f"offered_mpps must be positive, got {offered_mpps}")
        self._workload = workload or BackboneTraceGenerator(num_flows=20_000, seed=seed)
        self._frame_bytes = frame_bytes
        self._offered_mpps = offered_mpps

    @property
    def offered_mpps(self) -> float:
        """The offered load in millions of packets per second."""
        return self._offered_mpps

    @property
    def frame_bytes(self) -> int:
        """The generated frame size."""
        return self._frame_bytes

    def packets(self, count: int) -> Iterator[Packet]:
        """Generate ``count`` packets with workload-driven addresses and a fixed size."""
        for packet in self._workload.packets(count):
            yield Packet(
                src=packet.src,
                dst=packet.dst,
                src_port=packet.src_port,
                dst_port=packet.dst_port,
                protocol=17,
                size=self._frame_bytes,
            )

    def duration_seconds(self, count: int) -> float:
        """Wall-clock time the generator would need to emit ``count`` packets at the offered rate."""
        return count / (self._offered_mpps * 1e6)
