"""The user-space datapath (dpif-netdev) model.

Processes packets through the two-level flow lookup, applies the resulting
action, runs any attached per-packet measurement hook and charges everything
to the cost model.  The accumulated cycle count is what the throughput
experiments of Figures 6-8 convert into Mpps.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.exceptions import SwitchError
from repro.traffic.packet import Packet
from repro.vswitch.actions import Action, DropAction, OutputAction
from repro.vswitch.cost_model import CostModel
from repro.vswitch.flow_table import FlowTable
from repro.vswitch.ports import Port

#: A per-packet measurement hook: receives the packet, returns the extra
#: cycles it consumed (so hooks can report data-dependent costs).
MeasurementHook = Callable[[Packet], float]

#: A batch measurement hook: receives a whole packet batch, returns the total
#: extra cycles it consumed.  Lets measurement structures with a vectorized
#: update path (RHHH's batch engine) amortize their work per batch instead of
#: being driven packet by packet.
BatchMeasurementHook = Callable[[Sequence[Packet]], float]


class Datapath:
    """The packet-processing fast path of the simulated switch.

    Args:
        flow_table: the flow lookup structure.
        cost_model: the per-operation cycle costs.
    """

    def __init__(self, flow_table: FlowTable, cost_model: Optional[CostModel] = None) -> None:
        self._flow_table = flow_table
        self._cost = cost_model or CostModel()
        self._ports: Dict[int, Port] = {}
        self._hook: Optional[MeasurementHook] = None
        self._batch_hook: Optional[BatchMeasurementHook] = None
        self._processed = 0
        self._dropped = 0
        self._cycles = 0.0

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def add_port(self, port: Port) -> None:
        """Attach a port to the datapath."""
        if port.number in self._ports:
            raise SwitchError(f"port {port.number} already attached")
        self._ports[port.number] = port

    def port(self, number: int) -> Port:
        """Return an attached port by number."""
        try:
            return self._ports[number]
        except KeyError:
            raise SwitchError(f"no port {number} attached to the datapath") from None

    def set_measurement_hook(self, hook: Optional[MeasurementHook]) -> None:
        """Attach (or remove) the per-packet measurement hook."""
        self._hook = hook

    def set_batch_measurement_hook(self, hook: Optional[BatchMeasurementHook]) -> None:
        """Attach (or remove) the batch measurement hook used by :meth:`process_batch`."""
        self._batch_hook = hook

    @property
    def flow_table(self) -> FlowTable:
        """The flow lookup structure."""
        return self._flow_table

    @property
    def cost_model(self) -> CostModel:
        """The cycle cost model."""
        return self._cost

    # ------------------------------------------------------------------ #
    # packet processing
    # ------------------------------------------------------------------ #

    def _forward_one(self, packet: Packet, port: Port):
        """The measurement-free forwarding core shared by every entry point.

        Records rx/tx/drop on the ports, charges the forwarding cycles and
        updates the processed/dropped tallies; measurement hooks are layered
        on top by the callers (per packet in :meth:`process`, per batch in
        :meth:`process_batch`).  Returns ``(action, cycles)``.
        """
        port.record_rx(packet.size)
        cycles = self._cost.base_forwarding_cycles
        action, emc_hit = self._flow_table.lookup(packet)
        if not emc_hit:
            cycles += self._cost.classifier_lookup_cycles
        self._processed += 1
        if action is None or isinstance(action, DropAction):
            port.record_drop()
            self._dropped += 1
        elif isinstance(action, OutputAction):
            self.port(action.port).record_tx(packet.size)
        return action, cycles

    def process(self, packet: Packet, ingress_port: int) -> Optional[Action]:
        """Run one packet through the fast path and return the applied action."""
        action, cycles = self._forward_one(packet, self.port(ingress_port))
        if self._hook is not None:
            cycles += self._hook(packet)
        self._cycles += cycles
        return action

    def process_many(self, packets: Iterable[Packet], ingress_port: int) -> int:
        """Process a batch of packets; returns how many were forwarded (not dropped)."""
        forwarded = 0
        for packet in packets:
            action = self.process(packet, ingress_port)
            if isinstance(action, OutputAction):
                forwarded += 1
        return forwarded

    def process_stream(
        self,
        packets: Iterable[Packet],
        ingress_port: int,
        *,
        batch_size: Optional[int] = None,
    ) -> int:
        """Unified stream entry point: per-packet or RX-burst processing.

        This is the datapath counterpart of the :class:`repro.api.session.Session`
        feed protocol: ``batch_size=None`` drives :meth:`process` per packet,
        a batch size cuts the stream into bursts for :meth:`process_batch`
        (batch-amortized measurement).  Returns how many packets were
        forwarded (not dropped).
        """
        if batch_size is None:
            return self.process_many(packets, ingress_port)
        if batch_size < 1:
            raise SwitchError(f"batch_size must be >= 1, got {batch_size}")
        packets = list(packets) if not isinstance(packets, (list, tuple)) else packets
        forwarded = 0
        for start in range(0, len(packets), batch_size):
            forwarded += self.process_batch(packets[start : start + batch_size], ingress_port)
        return forwarded

    # The datapath's reference is per-packet process() itself (the docstring
    # contract below); the burst/per-packet parity suite pins the pair.
    def process_batch(  # reprolint: ok(twin-parity)
        self, packets: Sequence[Packet], ingress_port: int
    ) -> int:
        """Process a batch through the fast path with batch-amortized measurement.

        Lookup, action and accounting semantics are identical to per-packet
        :meth:`process` calls; the difference is the measurement: when a batch
        hook is attached it is invoked once with the whole batch (after the
        forwarding pass, mirroring how the paper's DPDK deployment hands RX
        bursts to the measurement stage), falling back to the per-packet hook
        otherwise.  Returns how many packets were forwarded (not dropped).
        """
        packets = list(packets) if not isinstance(packets, (list, tuple)) else packets
        port = self.port(ingress_port)
        forward_one = self._forward_one
        forwarded = 0
        cycles = 0.0
        for packet in packets:
            action, packet_cycles = forward_one(packet, port)
            cycles += packet_cycles
            if isinstance(action, OutputAction):
                forwarded += 1
        if self._batch_hook is not None:
            cycles += self._batch_hook(packets)
        elif self._hook is not None:
            hook = self._hook
            for packet in packets:
                cycles += hook(packet)
        self._cycles += cycles
        return forwarded

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @property
    def processed(self) -> int:
        """Packets processed so far."""
        return self._processed

    @property
    def dropped(self) -> int:
        """Packets dropped so far."""
        return self._dropped

    @property
    def total_cycles(self) -> float:
        """Cycles charged so far."""
        return self._cycles

    @property
    def cycles_per_packet(self) -> float:
        """Average per-packet cost observed so far."""
        return self._cycles / self._processed if self._processed else 0.0
