"""Datapath actions applied to packets after classification."""

from __future__ import annotations

import abc
from dataclasses import dataclass


class Action(abc.ABC):
    """An action the datapath applies to a matched packet."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable rendering, e.g. ``output:2``."""


@dataclass(frozen=True)
class OutputAction(Action):
    """Forward the packet out of a port."""

    port: int

    def describe(self) -> str:
        return f"output:{self.port}"


@dataclass(frozen=True)
class DropAction(Action):
    """Silently drop the packet."""

    def describe(self) -> str:
        return "drop"
