"""The distributed deployment: the switch samples and forwards, a VM measures.

In the paper's second integration mode the switch does not run the HHH update
at all; it forwards (a sample of) the traffic to a measurement virtual machine
that runs RHHH.  When ``V > H`` only the packets whose random draw selects a
real level need to be forwarded, so the switch-side cost per packet is one RNG
draw plus, with probability ``H / V``, one packet clone towards the VM - which
is why throughput improves with ``V`` in Figure 8.  The VM itself is modelled
as a separate budget: it receives roughly ``N * H / V`` packets and spends one
counter update on each.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.determinism import resolve_seed
from repro.core.rhhh import RHHH
from repro.exceptions import SwitchError
from repro.traffic.packet import Packet
from repro.vswitch.cost_model import CostModel, ThroughputResult
from repro.vswitch.moongen import LINE_RATE_64B_MPPS


class MeasurementVM:
    """The measurement virtual machine of the distributed deployment.

    It receives the sampled packets and performs one counter update per
    received packet.  Any spec-built lattice algorithm can sit on the VM side
    (a sharded engine, an array-backed RHHH, MST); a *plain* RHHH must be
    configured with ``V = H``, because the ``V > H`` sampling already
    happened at the switch and sampling twice would double-discount the
    stream.

    Args:
        algorithm: the algorithm owned by the VM.
        cost_model: cycle costs used to model the VM's own processing rate.
    """

    def __init__(self, algorithm: HHHAlgorithm, cost_model: Optional[CostModel] = None) -> None:
        if isinstance(algorithm, RHHH) and algorithm.v != algorithm.hierarchy.size:
            raise SwitchError(
                "the VM-side RHHH must use V = H; the switch performs the V > H sampling"
            )
        self._algorithm = algorithm
        self._cost = cost_model or CostModel()
        self._received = 0

    @property
    def algorithm(self) -> HHHAlgorithm:
        """The VM-side algorithm instance."""
        return self._algorithm

    @property
    def received(self) -> int:
        """Packets received from the switch so far."""
        return self._received

    def receive(self, key: Hashable) -> None:
        """Process one forwarded packet."""
        self._received += 1
        self._algorithm.update(key)

    def receive_batch(self, keys: Sequence) -> None:
        """Process a batch of forwarded packets in one vectorized update."""
        if len(keys) == 0:
            return
        self._received += len(keys)
        self._algorithm.update_batch(keys)

    def output(self, theta: float) -> HHHOutput:
        """Query the VM-side algorithm."""
        return self._algorithm.output(theta)

    def processing_rate_mpps(self) -> float:
        """Packets per second the VM itself can absorb (one counter update each)."""
        cycles = self._cost.rng_cycles + self._cost.mask_cycles + self._cost.counter_update_cycles
        return self._cost.mpps_for_cycles(cycles)


class DistributedMeasurement:
    """Switch-side sampling plus VM-side measurement (the deployment of Figure 8).

    Args:
        hierarchy_size: the hierarchy size ``H``.
        v: the performance parameter ``V >= H`` controlling the sampling rate.
        vm: the measurement VM the sampled packets are forwarded to.
        cost_model: cycle costs for the switch side.
        dimensions: 1 for source keys, 2 for (source, destination) keys.
        seed: RNG seed of the switch-side sampling.
    """

    def __init__(
        self,
        hierarchy_size: int,
        v: int,
        vm: MeasurementVM,
        cost_model: Optional[CostModel] = None,
        *,
        dimensions: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        if v < hierarchy_size or hierarchy_size < 1:
            raise SwitchError(f"need 1 <= H <= V, got H={hierarchy_size}, V={v}")
        if dimensions not in (1, 2):
            raise SwitchError(f"dimensions must be 1 or 2, got {dimensions}")
        self._h = hierarchy_size
        self._v = v
        self._vm = vm
        self._cost = cost_model or CostModel()
        self._dimensions = dimensions
        self._rng = random.Random(resolve_seed(seed))
        # Separate numpy stream for the vectorized batch path (the same
        # dual-RNG arrangement RHHH uses: the scalar and batch paths own
        # independent generators, each internally reproducible).
        self._batch_rng = np.random.default_rng(resolve_seed(seed))
        self._seen = 0
        self._forwarded = 0

    @property
    def vm(self) -> MeasurementVM:
        """The measurement VM."""
        return self._vm

    @property
    def seen(self) -> int:
        """Packets observed by the switch."""
        return self._seen

    @property
    def forwarded(self) -> int:
        """Packets forwarded to the VM."""
        return self._forwarded

    @property
    def forwarding_probability(self) -> float:
        """Probability that a packet is forwarded to the VM (``H / V``)."""
        return self._h / self._v

    # ------------------------------------------------------------------ #
    # packet path
    # ------------------------------------------------------------------ #

    def __call__(self, packet: Packet) -> float:
        """Datapath hook: sample, maybe forward to the VM, return the switch-side cycles."""
        self._seen += 1
        cycles = self._cost.rng_cycles
        if self._rng.randrange(self._v) < self._h:
            self._forwarded += 1
            cycles += self._cost.forward_to_vm_cycles
            key: Hashable = packet.key_1d() if self._dimensions == 1 else packet.key_2d()
            self._vm.receive(key)
        return cycles

    def process(self, packets: Iterable[Packet]) -> None:
        """Run a batch of packets through the sampling path (without a full switch model)."""
        for packet in packets:
            self(packet)

    # ------------------------------------------------------------------ #
    # vectorized batch path
    # ------------------------------------------------------------------ #

    def _key_array(self, packets: Sequence[Packet]) -> np.ndarray:
        """Extract the batch's keys as the numpy array the VM's engine expects."""
        if self._dimensions == 1:
            return np.fromiter(
                (packet.src for packet in packets), dtype=np.int64, count=len(packets)
            )
        return np.array([(packet.src, packet.dst) for packet in packets], dtype=np.int64)

    def process_batch(self, packets: Sequence[Packet]) -> float:
        """Vectorized sampling path: pre-drawn mask, one batched VM forward.

        Semantically the batch twin of :meth:`process`: every packet costs
        one RNG draw, the drawn ones are forwarded - but the draws come as
        one vectorized block from the batch RNG stream and the forwarded
        keys reach the VM as a single ``update_batch`` call.  Returns the
        switch-side cycles spent on the batch.
        """
        n = len(packets)
        if n == 0:
            return 0.0
        draws = self._batch_rng.integers(0, self._v, size=n)
        mask = draws < self._h
        forwarded = int(np.count_nonzero(mask))
        self._seen += n
        self._forwarded += forwarded
        if forwarded:
            self._vm.receive_batch(self._key_array(packets)[mask])
        return n * self._cost.rng_cycles + forwarded * self._cost.forward_to_vm_cycles

    def process_batch_reference(self, packets: Sequence[Packet]) -> float:
        """Scalar twin of :meth:`process_batch`, for parity testing.

        Consumes the *same* pre-drawn RNG block and forwards the same keys
        in the same order (accumulated, then one batched VM forward), but
        walks the packets one by one in Python - so a same-seeded instance
        driven through this path ends bit-identical to the vectorized one.
        """
        n = len(packets)
        if n == 0:
            return 0.0
        draws = self._batch_rng.integers(0, self._v, size=n)
        keys = self._key_array(packets)
        picked = []
        for i in range(n):
            self._seen += 1
            if draws[i] < self._h:
                self._forwarded += 1
                picked.append(i)
        if picked:
            self._vm.receive_batch(keys[np.asarray(picked, dtype=np.int64)])
        return n * self._cost.rng_cycles + len(picked) * self._cost.forward_to_vm_cycles

    # ------------------------------------------------------------------ #
    # throughput model
    # ------------------------------------------------------------------ #

    def switch_cycles_per_packet(self, base_forwarding_cycles: Optional[float] = None) -> float:
        """Expected switch-side cycles per packet (forwarding plus sampling)."""
        base = (
            base_forwarding_cycles
            if base_forwarding_cycles is not None
            else self._cost.base_forwarding_cycles
        )
        return base + self._cost.sampling_forward_cycles(self._h, self._v)

    def throughput(
        self,
        *,
        offered_mpps: float = LINE_RATE_64B_MPPS,
        line_rate_mpps: float = LINE_RATE_64B_MPPS,
    ) -> ThroughputResult:
        """Model the switch's sustainable rate in the distributed deployment (Figure 8)."""
        cycles = self.switch_cycles_per_packet()
        return self._cost.throughput(cycles, offered_mpps=offered_mpps, line_rate_mpps=line_rate_mpps)
