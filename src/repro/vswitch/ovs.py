"""The simulated Open vSwitch and the dataplane HHH integration.

:class:`OVSSwitch` wires ports, flow table and datapath together in the
two-port forwarding configuration of the paper's testbed (traffic enters one
physical port and leaves through the other).  :class:`DataplaneMeasurement`
attaches an HHH algorithm as the datapath's per-packet hook: every forwarded
packet also updates the measurement structure, and its cost (derived from the
algorithm's own parameters by the cost model) is charged to the packet -
the deployment mode of Figures 6 and 7.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.core.base import HHHAlgorithm, HHHOutput
from repro.exceptions import SwitchError
from repro.traffic.packet import Packet
from repro.vswitch.actions import OutputAction
from repro.vswitch.cost_model import CostModel, ThroughputResult
from repro.vswitch.datapath import Datapath
from repro.vswitch.flow_table import FlowTable
from repro.vswitch.moongen import LINE_RATE_64B_MPPS
from repro.vswitch.ports import Port


class DataplaneMeasurement:
    """Per-packet HHH measurement running inside the switch's fast path.

    Args:
        algorithm: the HHH algorithm fed by the hook.
        cost_model: cycle costs used to charge the measurement work.
        dimensions: 1 to feed source addresses, 2 to feed (source,
            destination) pairs; defaults to the hierarchy's dimensionality.
    """

    def __init__(
        self,
        algorithm: HHHAlgorithm,
        cost_model: Optional[CostModel] = None,
        *,
        dimensions: Optional[int] = None,
    ) -> None:
        self._algorithm = algorithm
        self._cost = cost_model or CostModel()
        self._dimensions = dimensions if dimensions is not None else algorithm.hierarchy.dimensions
        if self._dimensions not in (1, 2):
            raise SwitchError(f"dimensions must be 1 or 2, got {self._dimensions}")
        self._cycles_per_packet = self._cost.measurement_cycles(algorithm)

    @property
    def algorithm(self) -> HHHAlgorithm:
        """The attached HHH algorithm."""
        return self._algorithm

    @property
    def cycles_per_packet(self) -> float:
        """Expected extra cycles the measurement adds to every packet."""
        return self._cycles_per_packet

    def __call__(self, packet: Packet) -> float:
        """The datapath hook: update the algorithm and return the charged cycles."""
        key: Hashable = packet.key_1d() if self._dimensions == 1 else packet.key_2d()
        self._algorithm.update(key)
        return self._cycles_per_packet

    def update_batch(self, packets: Sequence[Packet]) -> float:
        """The batch datapath hook: one vectorized update for a whole RX burst.

        Extracts the key column(s) into a numpy array and hands it to the
        algorithm's ``update_batch``, so an attached RHHH instance takes its
        vectorized path; the charged cycles are the same per-packet cost as
        the scalar hook times the batch size.
        """
        if not packets:
            return 0.0
        if self._dimensions == 1:
            keys = np.fromiter((p.src for p in packets), dtype=np.int64, count=len(packets))
        else:
            keys = np.array([(p.src, p.dst) for p in packets], dtype=np.int64)
        self._algorithm.update_batch(keys)
        return self._cycles_per_packet * len(packets)

    def update_batch_reference(self, packets: Sequence[Packet]) -> float:
        """Scalar twin of :meth:`update_batch`: same burst, scalar algorithm path.

        Extracts the key column exactly like the vectorized hook and hands it
        to the algorithm's own ``update_batch_reference`` scalar twin, so the
        two hooks leave a deterministic algorithm bit-identical and charge the
        same cycles; the differential twin test pins the pair.
        """
        if not packets:
            return 0.0
        if self._dimensions == 1:
            keys = np.fromiter((p.src for p in packets), dtype=np.int64, count=len(packets))
        else:
            keys = np.array([(p.src, p.dst) for p in packets], dtype=np.int64)
        self._algorithm.update_batch_reference(keys)
        return self._cycles_per_packet * len(packets)

    def output(self, theta: float) -> HHHOutput:
        """Query the attached algorithm."""
        return self._algorithm.output(theta)


class OVSSwitch:
    """A two-port DPDK-style switch forwarding all traffic from port 0 to port 1.

    Args:
        cost_model: per-operation cycle costs.
        emc_capacity: exact-match cache size.
    """

    def __init__(self, cost_model: Optional[CostModel] = None, *, emc_capacity: int = 8192) -> None:
        self._cost = cost_model or CostModel()
        flow_table = FlowTable(emc_capacity=emc_capacity, default_action=OutputAction(port=1))
        self._datapath = Datapath(flow_table, self._cost)
        self._datapath.add_port(Port(0, "dpdk0", peer="traffic generator"))
        self._datapath.add_port(Port(1, "dpdk1", peer="sink"))
        self._measurement: Optional[DataplaneMeasurement] = None

    @property
    def datapath(self) -> Datapath:
        """The underlying datapath."""
        return self._datapath

    @property
    def cost_model(self) -> CostModel:
        """The cycle cost model."""
        return self._cost

    @property
    def measurement(self) -> Optional[DataplaneMeasurement]:
        """The attached dataplane measurement, if any."""
        return self._measurement

    def attach_measurement(self, measurement: Optional[DataplaneMeasurement]) -> None:
        """Attach (or detach, with ``None``) a dataplane HHH measurement."""
        self._measurement = measurement
        self._datapath.set_measurement_hook(measurement)
        self._datapath.set_batch_measurement_hook(
            measurement.update_batch if measurement is not None else None
        )

    # ------------------------------------------------------------------ #
    # experiments
    # ------------------------------------------------------------------ #

    def forward(self, packets: Iterable[Packet], *, batch_size: Optional[int] = None) -> int:
        """Functionally forward packets (updates the measurement if attached).

        ``batch_size`` selects the feed path exactly like an
        :class:`~repro.api.specs.ExperimentSpec` does: ``None`` processes per
        packet, a size cuts the stream into RX bursts for the batch fast path.
        """
        return self._datapath.process_stream(packets, ingress_port=0, batch_size=batch_size)

    def forward_batch(self, packets: Sequence[Packet]) -> int:
        """Forward a packet burst through the batch fast path.

        Uses :meth:`Datapath.process_batch`, so an attached measurement is fed
        through its vectorized batch hook instead of packet by packet.
        """
        return self._datapath.process_batch(packets, ingress_port=0)

    def expected_cycles_per_packet(self, *, emc_hit_rate: float = 1.0) -> float:
        """Expected per-packet cost of the current configuration.

        Args:
            emc_hit_rate: fraction of packets resolved by the exact-match
                cache; the rest pay a classifier lookup.  Backbone traffic with
                a bounded flow population keeps this close to 1.
        """
        if not 0.0 <= emc_hit_rate <= 1.0:
            raise SwitchError(f"emc_hit_rate must be in [0, 1], got {emc_hit_rate}")
        cycles = self._cost.base_forwarding_cycles
        cycles += (1.0 - emc_hit_rate) * self._cost.classifier_lookup_cycles
        if self._measurement is not None:
            cycles += self._measurement.cycles_per_packet
        return cycles

    def throughput(
        self,
        *,
        offered_mpps: float = LINE_RATE_64B_MPPS,
        line_rate_mpps: float = LINE_RATE_64B_MPPS,
        emc_hit_rate: float = 1.0,
    ) -> ThroughputResult:
        """Model the sustainable forwarding rate of the current configuration (Figures 6 and 7)."""
        cycles = self.expected_cycles_per_packet(emc_hit_rate=emc_hit_rate)
        return self._cost.throughput(cycles, offered_mpps=offered_mpps, line_rate_mpps=line_rate_mpps)
