"""OVS-style flow lookup: exact-match cache backed by a tuple-space classifier.

The DPDK datapath of Open vSwitch resolves most packets from the exact-match
cache (EMC, a hash of recently seen five-tuples); misses fall back to the
megaflow classifier, which performs a tuple-space search over the set of
distinct wildcard masks.  Both structures are modelled functionally here so
the datapath can count EMC hits/misses (the cost model charges a classifier
lookup on every miss) and so integration tests can install realistic wildcard
rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SwitchError
from repro.traffic.packet import Packet
from repro.vswitch.actions import Action


@dataclass(frozen=True)
class FlowEntry:
    """One classifier rule.

    Attributes:
        src_mask, dst_mask: bitmasks applied to the packet's addresses.
        src_match, dst_match: expected values after masking.
        action: action applied on match.
        priority: higher priority wins among matching rules.
    """

    src_mask: int
    dst_mask: int
    src_match: int
    dst_match: int
    action: Action
    priority: int = 0

    def matches(self, packet: Packet) -> bool:
        """True when the packet's addresses match this rule under its masks."""
        return (packet.src & self.src_mask) == self.src_match and (
            packet.dst & self.dst_mask
        ) == self.dst_match


@dataclass
class LookupStats:
    """Hit/miss statistics of the two-level lookup."""

    emc_hits: int = 0
    emc_misses: int = 0
    classifier_hits: int = 0
    classifier_misses: int = 0

    @property
    def emc_hit_rate(self) -> float:
        """Fraction of lookups resolved by the exact-match cache."""
        total = self.emc_hits + self.emc_misses
        return self.emc_hits / total if total else 0.0


class FlowTable:
    """Exact-match cache + tuple-space classifier.

    Args:
        emc_capacity: number of five-tuple entries the exact-match cache holds
            (8192 in stock OVS-DPDK); the cache evicts in FIFO order when full.
        default_action: action applied when no classifier rule matches
            (``None`` means the packet is dropped and counted as a miss).
    """

    def __init__(self, emc_capacity: int = 8192, default_action: Optional[Action] = None) -> None:
        if emc_capacity < 1:
            raise SwitchError(f"emc_capacity must be >= 1, got {emc_capacity}")
        self._emc_capacity = emc_capacity
        self._emc: Dict[Tuple[int, int, int, int, int], Action] = {}
        self._emc_order: List[Tuple[int, int, int, int, int]] = []
        # Rules grouped by (src_mask, dst_mask): one "tuple" per distinct mask
        # pair, searched in sequence - the tuple-space search of the megaflow
        # classifier.
        self._tuples: Dict[Tuple[int, int], Dict[Tuple[int, int], FlowEntry]] = {}
        self._default_action = default_action
        self.stats = LookupStats()

    # ------------------------------------------------------------------ #
    # rule management
    # ------------------------------------------------------------------ #

    def add_flow(self, entry: FlowEntry) -> None:
        """Install a classifier rule."""
        mask_pair = (entry.src_mask, entry.dst_mask)
        bucket = self._tuples.setdefault(mask_pair, {})
        key = (entry.src_match, entry.dst_match)
        existing = bucket.get(key)
        if existing is None or existing.priority <= entry.priority:
            bucket[key] = entry

    def flow_count(self) -> int:
        """Number of installed classifier rules."""
        return sum(len(bucket) for bucket in self._tuples.values())

    def mask_count(self) -> int:
        """Number of distinct wildcard mask pairs (the tuple-space width)."""
        return len(self._tuples)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def lookup(self, packet: Packet) -> Tuple[Optional[Action], bool]:
        """Resolve a packet to an action.

        Returns:
            ``(action, emc_hit)`` where ``action`` is ``None`` when the packet
            matched nothing (and no default action is configured) and
            ``emc_hit`` tells the datapath whether the expensive classifier
            path was taken.
        """
        five_tuple = packet.five_tuple()
        action = self._emc.get(five_tuple)
        if action is not None:
            self.stats.emc_hits += 1
            return action, True
        self.stats.emc_misses += 1
        best: Optional[FlowEntry] = None
        for (src_mask, dst_mask), bucket in self._tuples.items():
            key = (packet.src & src_mask, packet.dst & dst_mask)
            entry = bucket.get(key)
            if entry is not None and (best is None or entry.priority > best.priority):
                best = entry
        if best is not None:
            self.stats.classifier_hits += 1
            self._emc_insert(five_tuple, best.action)
            return best.action, False
        self.stats.classifier_misses += 1
        if self._default_action is not None:
            self._emc_insert(five_tuple, self._default_action)
            return self._default_action, False
        return None, False

    def _emc_insert(self, five_tuple: Tuple[int, int, int, int, int], action: Action) -> None:
        if five_tuple in self._emc:
            self._emc[five_tuple] = action
            return
        if len(self._emc) >= self._emc_capacity:
            victim = self._emc_order.pop(0)
            self._emc.pop(victim, None)
        self._emc[five_tuple] = action
        self._emc_order.append(five_tuple)
