"""Cycle-accounting cost model of the simulated switch.

Every per-packet activity (base forwarding, exact-match-cache hit, classifier
lookup, RNG draw, masking, counter update, forwarding to a VM, trie
operations) is charged a constant number of CPU cycles.  Dividing the CPU
frequency by the average cycles per packet yields the achievable forwarding
rate, which is then capped at the offered load and at the line rate - exactly
the mechanism that shaped the paper's Figures 6-8 (the unmodified switch is
line-rate limited; measurement work pushes the switch below line rate once the
per-packet budget is exhausted).

The default constants are calibrated so that the simulated operating points
land close to the paper's headline numbers on the paper's hardware
(3.1 GHz Xeon E3-1220v2, 10 GbE): unmodified OVS ~14.88 Mpps (line-rate
limited), 10-RHHH ~13.8 Mpps, RHHH ~10.6 Mpps, Partial Ancestry ~5.6 Mpps.
They are plain dataclass fields, so sensitivity studies can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput experiment.

    Attributes:
        offered_mpps: offered load in millions of packets per second.
        achieved_mpps: forwarding rate actually sustained.
        cycles_per_packet: average per-packet cost charged by the model.
        line_rate_mpps: the line-rate cap that applied.
    """

    offered_mpps: float
    achieved_mpps: float
    cycles_per_packet: float
    line_rate_mpps: float

    @property
    def loss_fraction(self) -> float:
        """Fraction of the offered load that could not be forwarded."""
        if self.offered_mpps <= 0:
            return 0.0
        return max(0.0, 1.0 - self.achieved_mpps / self.offered_mpps)


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs and platform parameters.

    Attributes:
        cpu_ghz: CPU frequency in GHz (the paper's DUT runs at 3.1 GHz).
        base_forwarding_cycles: unavoidable per-packet cost of the DPDK fast
            path (RX, parse, EMC hit, action, TX).
        classifier_lookup_cycles: additional cost of a tuple-space classifier
            lookup on an exact-match-cache miss.
        rng_cycles: drawing one pseudo-random level index.
        mask_cycles: masking a key to one lattice node.
        counter_update_cycles: one Space Saving (or comparable) counter update.
        trie_hit_cycles: the cheap path of the Ancestry algorithms (hash hit).
        trie_miss_cycles_per_level: per-hierarchy-level cost of an Ancestry
            miss (ancestor walk / node creation).
        forward_to_vm_cycles: cloning and enqueueing one sampled packet towards
            the measurement VM (distributed deployment).
    """

    cpu_ghz: float = 3.1
    base_forwarding_cycles: float = 205.0
    classifier_lookup_cycles: float = 110.0
    rng_cycles: float = 12.0
    mask_cycles: float = 4.0
    counter_update_cycles: float = 75.0
    trie_hit_cycles: float = 95.0
    trie_miss_cycles_per_level: float = 50.0
    forward_to_vm_cycles: float = 290.0

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise ConfigurationError(f"cpu_ghz must be positive, got {self.cpu_ghz}")
        for field_name in (
            "base_forwarding_cycles",
            "classifier_lookup_cycles",
            "rng_cycles",
            "mask_cycles",
            "counter_update_cycles",
            "trie_hit_cycles",
            "trie_miss_cycles_per_level",
            "forward_to_vm_cycles",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    @property
    def cycles_per_second(self) -> float:
        """CPU cycles available per second."""
        return self.cpu_ghz * 1e9

    def mpps_for_cycles(self, cycles_per_packet: float) -> float:
        """Forwarding rate (Mpps) sustainable at a given per-packet cost."""
        if cycles_per_packet <= 0:
            return float("inf")
        return self.cycles_per_second / cycles_per_packet / 1e6

    def throughput(
        self, cycles_per_packet: float, *, offered_mpps: float, line_rate_mpps: float
    ) -> ThroughputResult:
        """Combine the CPU limit, the offered load and the line-rate cap."""
        if offered_mpps < 0 or line_rate_mpps <= 0:
            raise ConfigurationError("offered_mpps must be >= 0 and line_rate_mpps > 0")
        cpu_limit = self.mpps_for_cycles(cycles_per_packet)
        achieved = min(offered_mpps, line_rate_mpps, cpu_limit)
        return ThroughputResult(
            offered_mpps=offered_mpps,
            achieved_mpps=achieved,
            cycles_per_packet=cycles_per_packet,
            line_rate_mpps=line_rate_mpps,
        )

    # ------------------------------------------------------------------ #
    # per-algorithm expected measurement cost
    # ------------------------------------------------------------------ #

    def measurement_cycles(self, algorithm) -> float:
        """Expected extra cycles per packet caused by running ``algorithm`` in the dataplane.

        The expectation is derived from the algorithm's own parameters (H, V,
        sampling probability), so the relative ordering of the algorithms is a
        property of the algorithms, not of hand-picked constants.
        """
        # Imported here to avoid a hard dependency cycle at module import time.
        from repro.core.rhhh import RHHH
        from repro.hhh.ancestry import FullAncestry, PartialAncestry
        from repro.hhh.mst import MST
        from repro.hhh.sampled_mst import SampledMST

        h = algorithm.hierarchy.size
        per_update = self.mask_cycles + self.counter_update_cycles
        if isinstance(algorithm, RHHH):
            probability = h / algorithm.v
            return algorithm.updates_per_packet * (self.rng_cycles + probability * per_update)
        if isinstance(algorithm, SampledMST):
            return self.rng_cycles + algorithm.sampling_probability * h * per_update
        if isinstance(algorithm, MST):
            return h * per_update
        if isinstance(algorithm, FullAncestry):
            # Hash hit on the fully specified leaf plus amortized ancestor
            # creation / compression work proportional to the hierarchy depth.
            return self.trie_hit_cycles + 0.5 * h * self.trie_miss_cycles_per_level
        if isinstance(algorithm, PartialAncestry):
            return self.trie_hit_cycles + 0.2 * h * self.trie_miss_cycles_per_level
        raise ConfigurationError(
            f"no cost model for algorithm type {type(algorithm).__name__}; "
            "pass explicit cycles instead"
        )

    def sampling_forward_cycles(self, h: int, v: int) -> float:
        """Expected switch-side cycles per packet in the distributed deployment.

        The switch draws one random number per packet and forwards the packet
        to the measurement VM only when the draw selects a real level
        (probability ``H / V``).
        """
        if h < 1 or v < h:
            raise ConfigurationError(f"need 1 <= H <= V, got H={h}, V={v}")
        return self.rng_cycles + (h / v) * self.forward_to_vm_cycles
