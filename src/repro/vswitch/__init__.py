"""A simulated DPDK-style Open vSwitch datapath with HHH measurement hooks.

The paper's Section 5 integrates RHHH into the DPDK build of Open vSwitch and
measures forwarding throughput on a 10 GbE testbed (14.88 Mpps line rate for
64-byte frames).  That hardware is obviously not available to a pure-Python
reproduction, so this sub-package provides the closest executable equivalent:

* a functional model of the OVS fast path - ports, an exact-match cache
  backed by a tuple-space classifier, an action pipeline
  (:mod:`repro.vswitch.datapath`);
* a cycle-accounting cost model (:mod:`repro.vswitch.cost_model`) that charges
  each packet for the work it causes (base forwarding, flow lookups, RNG
  draws, counter updates, packet forwarding to a measurement VM) and converts
  the resulting cycles/packet into Mpps under a configurable CPU frequency and
  line-rate cap - the same mechanism that produces Figures 6, 7 and 8;
* the two integration modes evaluated in the paper: measurement inside the
  dataplane (:class:`~repro.vswitch.ovs.OVSSwitch` with an attached
  :class:`~repro.vswitch.ovs.DataplaneMeasurement`) and the distributed mode
  where the switch only samples-and-forwards packets to a measurement VM
  (:mod:`repro.vswitch.distributed`);
* a MoonGen-like traffic generator (:mod:`repro.vswitch.moongen`).

The simulation is explicitly a *model*: absolute Mpps values depend on the
calibration constants in :class:`~repro.vswitch.cost_model.CostModel`
(defaulted to reproduce the paper's reported operating points), while the
relative ordering of the algorithms follows directly from the number of
operations each performs per packet, which is computed from the real
algorithm objects.
"""

from repro.vswitch.cost_model import CostModel, ThroughputResult
from repro.vswitch.ports import Port, PortStats
from repro.vswitch.actions import Action, OutputAction, DropAction
from repro.vswitch.flow_table import FlowEntry, FlowTable
from repro.vswitch.datapath import Datapath
from repro.vswitch.ovs import OVSSwitch, DataplaneMeasurement
from repro.vswitch.distributed import DistributedMeasurement, MeasurementVM
from repro.vswitch.moongen import TrafficGenerator, LINE_RATE_64B_MPPS

__all__ = [
    "CostModel",
    "ThroughputResult",
    "Port",
    "PortStats",
    "Action",
    "OutputAction",
    "DropAction",
    "FlowEntry",
    "FlowTable",
    "Datapath",
    "OVSSwitch",
    "DataplaneMeasurement",
    "DistributedMeasurement",
    "MeasurementVM",
    "TrafficGenerator",
    "LINE_RATE_64B_MPPS",
]
