"""Switch ports and their statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SwitchError


@dataclass
class PortStats:
    """Packet and byte counters of one port."""

    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    dropped: int = 0


@dataclass
class Port:
    """A switch port (physical DPDK port or virtual port towards a VNF).

    Attributes:
        number: the datapath port number.
        name: human-readable name (e.g. ``dpdk0`` or ``vhost-user-1``).
        peer: optional description of what the port connects to.
    """

    number: int
    name: str
    peer: str = ""
    stats: PortStats = field(default_factory=PortStats)

    def __post_init__(self) -> None:
        if self.number < 0:
            raise SwitchError(f"port number must be non-negative, got {self.number}")

    def record_rx(self, size: int) -> None:
        """Account one received packet of ``size`` bytes."""
        self.stats.rx_packets += 1
        self.stats.rx_bytes += size

    def record_tx(self, size: int) -> None:
        """Account one transmitted packet of ``size`` bytes."""
        self.stats.tx_packets += 1
        self.stats.tx_bytes += size

    def record_drop(self) -> None:
        """Account one dropped packet."""
        self.stats.dropped += 1
