"""The Output procedure of Algorithm 1 and the ``calcPred`` helpers (Algorithms 2 and 3).

The same code serves RHHH and the lattice-based baselines (MST and the naive
sampling baseline): they differ only in the ``scale`` applied to raw counter
values (``V`` for RHHH because each counter sees roughly a ``1/V`` sample of
the stream, ``1`` for MST) and in the additive ``correction`` term of
Algorithm 1 line 13 (``2 Z_{1-delta} sqrt(N V)`` for RHHH, ``0`` for the
deterministic baselines).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.base import HHHCandidate, HHHOutput
from repro.exceptions import ConfigurationError
from repro.hh.base import CounterAlgorithm
from repro.hierarchy.base import Hierarchy, PrefixKey

#: A function mapping an internal ``(node, value)`` prefix to a frequency bound.
BoundFn = Callable[[PrefixKey], float]


def validate_theta(theta: float) -> float:
    """Validate the HHH threshold fraction and return it.

    Every ``output(theta)`` entry point shares this check: a ``theta`` outside
    ``(0, 1]`` would make the ``theta * N`` threshold non-positive (reporting
    everything) or unreachable (reporting nothing) without any error - the
    classic silent-garbage failure mode.

    Raises:
        ConfigurationError: when ``theta`` is not in ``(0, 1]``.
    """
    if not isinstance(theta, (int, float)) or isinstance(theta, bool):
        raise ConfigurationError(f"theta must be a number in (0, 1], got {theta!r}")
    if not 0.0 < theta <= 1.0:
        raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
    return float(theta)


def calc_pred(
    hierarchy: Hierarchy,
    prefix: PrefixKey,
    selected: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
) -> float:
    """Compute the predecessor adjustment of the conditioned-frequency estimate.

    In one dimension this is Algorithm 2: subtract the lower-bound frequency of
    every already-selected HHH that ``prefix`` most closely generalizes
    (``G(p|P)``).  In two dimensions this is Algorithm 3: additionally add back
    the upper-bound frequency of the greatest lower bound of every pair of such
    prefixes (inclusion-exclusion), unless a third member of ``G(p|P)``
    already generalizes that glb.

    Args:
        hierarchy: the hierarchical domain.
        prefix: the candidate prefix ``p`` as a ``(node, value)`` tuple.
        selected: the already-selected HHH prefixes ``P``.
        lower_bound: maps a prefix to a lower bound of its frequency (``f^-``).
        upper_bound: maps a prefix to an upper bound of its frequency (``f^+``).

    Returns:
        the (usually negative) adjustment ``R`` to add to ``f^+_p``.
    """
    closest = hierarchy.closest_descendants(prefix, selected)
    result = 0.0
    for h in closest:
        result -= lower_bound(h)
    if hierarchy.dimensions >= 2 and len(closest) >= 2:
        for i in range(len(closest)):
            for j in range(i + 1, len(closest)):
                h, h_prime = closest[i], closest[j]
                q = hierarchy.glb(h, h_prime)
                if q is None:
                    continue
                covered_by_third = any(
                    h3 not in (h, h_prime) and hierarchy.is_ancestor(h3, q) for h3 in closest
                )
                if not covered_by_third:
                    result += upper_bound(q)
    return result


def conditioned_frequency_estimate(
    hierarchy: Hierarchy,
    prefix: PrefixKey,
    selected: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
    correction: float,
) -> float:
    """Conservative conditioned-frequency estimate ``C^_{p|P}`` (Algorithm 1, lines 12-13)."""
    return upper_bound(prefix) + calc_pred(hierarchy, prefix, selected, lower_bound, upper_bound) + correction


def lattice_output(
    hierarchy: Hierarchy,
    counters: Sequence[CounterAlgorithm],
    theta: float,
    total: int,
    *,
    scale: float = 1.0,
    correction: float = 0.0,
) -> HHHOutput:
    """Run the Output procedure over a per-lattice-node array of counter summaries.

    Scans lattice nodes from the most specific to the most general (the order
    Definition 8 builds the exact HHH set in), computes the conservative
    conditioned frequency of every tracked prefix against the already-selected
    set ``P``, and selects prefixes whose estimate reaches ``theta * total``.

    Args:
        hierarchy: the hierarchical domain.
        counters: one counter summary per lattice node (indexed by node).
        theta: threshold fraction.
        total: stream length ``N``.
        scale: multiplier converting raw counter values to stream-level
            frequencies (``V`` for RHHH, 1 for MST).
        correction: additive sampling-error compensation in stream-level units.

    Returns:
        an :class:`~repro.core.base.HHHOutput` with the selected candidates.
    """
    if len(counters) != hierarchy.size:
        raise ValueError(
            f"expected {hierarchy.size} counter instances (one per lattice node), got {len(counters)}"
        )
    threshold = theta * total

    def upper(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].upper_bound(value) * scale

    def lower(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].lower_bound(value) * scale

    selected: List[PrefixKey] = []
    candidates: List[HHHCandidate] = []
    for node in hierarchy.output_order():
        for value in list(counters[node]):
            prefix: PrefixKey = (node, value)
            estimate = conditioned_frequency_estimate(
                hierarchy, prefix, selected, lower, upper, correction
            )
            if estimate >= threshold:
                selected.append(prefix)
                candidates.append(
                    HHHCandidate(
                        prefix=hierarchy.to_prefix(prefix),
                        lower_bound=lower(prefix),
                        upper_bound=upper(prefix),
                        conditioned_estimate=estimate,
                    )
                )
    return HHHOutput(candidates=candidates, total=total, threshold=threshold)
