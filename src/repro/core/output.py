"""The Output procedure of Algorithm 1 and the ``calcPred`` helpers (Algorithms 2 and 3).

The same code serves RHHH and the lattice-based baselines (MST and the naive
sampling baseline): they differ only in the ``scale`` applied to raw counter
values (``V`` for RHHH because each counter sees roughly a ``1/V`` sample of
the stream, ``1`` for MST) and in the additive ``correction`` term of
Algorithm 1 line 13 (``2 Z_{1-delta} sqrt(N V)`` for RHHH, ``0`` for the
deterministic baselines).

The module also owns the *incremental* query engine behind repeated
``output(theta)`` calls: engines stamp a per-lattice-node version counter on
every update, and an :class:`OutputCache` keeps the previous pass per theta -
every tracked prefix's bounds, its ``calcPred`` adjustment together with the
lattice nodes that adjustment read bounds from, and the selection sequence.
A re-query then recomputes only the prefixes whose inputs changed: dirty
nodes are re-enumerated, a cached adjustment is reused only while the
selection-so-far still matches the previous pass and every node it read is
clean, and the first selection divergence invalidates everything downstream
of it.  The incremental pass is bit-identical to the from-scratch pass (the
streaming-parity suite pins this): the threshold and correction are
recomputed fresh every pass, cached adjustments are exact floats of the
reference computation, and the lazily rebuilt :class:`SelectedIndex` replays
selections in the same insertion order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import HHHCandidate, HHHOutput
from repro.exceptions import ConfigurationError
from repro.hh.base import CounterAlgorithm
from repro.hierarchy.base import Hierarchy, PrefixKey

#: A function mapping an internal ``(node, value)`` prefix to a frequency bound.
BoundFn = Callable[[PrefixKey], float]


class SelectedIndex:
    """Masked-value index of selected HHH prefixes for fast ``G(p|P)`` queries.

    ``Hierarchy.closest_descendants`` scans the *whole* selected set (one
    ``is_proper_ancestor`` each) for every candidate prefix, which makes the
    Output procedure quadratic in the candidate count - painful at small
    theta, where hundreds of prefixes pass the threshold.  This index caps
    that scan two ways:

    * selected prefixes are grouped by lattice node, and a query skips whole
      groups whose node cannot be generalized to the query node at all
      (node-to-node reachability is value-independent by the
      :meth:`~repro.hierarchy.base.Hierarchy.generalize_prefix` contract -
      ``None`` means the *nodes* are incomparable - so one probe per node
      pair is cached);
    * within a reachable group, candidates are bucketed by their value masked
      to the query node, built lazily once per ``(candidate node, query
      node)`` pair and kept current by :meth:`add`.  A prefix ``p``
      generalizes exactly the candidates in the bucket of ``p``'s own value,
      so each query is one dict lookup per reachable node instead of a pass
      over every selected prefix.

    Results are returned in selection (insertion) order - exactly the order
    the unindexed reference produces - so the floating-point summations in
    ``calc_pred`` are bit-identical to the reference; the parity tests pin
    this.
    """

    def __init__(self, hierarchy: Hierarchy) -> None:
        self._hierarchy = hierarchy
        self._by_node: Dict[int, List[Tuple[int, PrefixKey]]] = {}
        self._order = 0
        #: (candidate node, query node) -> can any prefix at candidate node be
        #: masked to query node?
        self._node_reaches: Dict[Tuple[int, int], bool] = {}
        #: (candidate node, query node) -> {masked value: [(order, prefix)]}
        self._masked: Dict[Tuple[int, int], Dict] = {}

    def __len__(self) -> int:
        return self._order

    def add(self, prefix: PrefixKey) -> None:
        """Record a newly selected prefix (and refresh the lazy mask buckets)."""
        node = prefix[0]
        entry = (self._order, prefix)
        self._by_node.setdefault(node, []).append(entry)
        self._order += 1
        for (candidate_node, query_node), buckets in self._masked.items():
            if candidate_node == node:
                masked = self._hierarchy.generalize_prefix(prefix, query_node)
                buckets.setdefault(masked, []).append(entry)

    def _buckets(self, candidate_node: int, query_node: int) -> Dict:
        """The masked-value buckets of one reachable node pair (built lazily)."""
        pair = (candidate_node, query_node)
        buckets = self._masked.get(pair)
        if buckets is None:
            buckets = {}
            generalize_prefix = self._hierarchy.generalize_prefix
            for entry in self._by_node[candidate_node]:
                buckets.setdefault(generalize_prefix(entry[1], query_node), []).append(entry)
            self._masked[pair] = buckets
        return buckets

    def closest_descendants(self, prefix: PrefixKey) -> List[PrefixKey]:
        """``G(prefix | selected)``, identical to the unindexed reference.

        Equivalent to ``hierarchy.closest_descendants(prefix, selected)`` with
        ``selected`` in insertion order, but resolved through the node-pair
        reachability cache and the masked-value buckets.
        """
        node, value = prefix
        hierarchy = self._hierarchy
        reaches = self._node_reaches
        below: List[Tuple[int, PrefixKey]] = []
        for candidate_node, entries in self._by_node.items():
            compatible = reaches.get((candidate_node, node))
            if compatible is None:
                compatible = hierarchy.generalize_prefix(entries[0][1], node) is not None
                reaches[(candidate_node, node)] = compatible
            if not compatible:
                continue
            for entry in self._buckets(candidate_node, node).get(value, ()):
                if entry[1] != prefix:
                    below.append(entry)
        below.sort()
        candidates = [candidate for _, candidate in below]
        return [
            c
            for c in candidates
            if not any(
                other != c and hierarchy.is_proper_ancestor(other, c) for other in candidates
            )
        ]


def validate_theta(theta: float) -> float:
    """Validate the HHH threshold fraction and return it.

    Every ``output(theta)`` entry point shares this check: a ``theta`` outside
    ``(0, 1]`` would make the ``theta * N`` threshold non-positive (reporting
    everything) or unreachable (reporting nothing) without any error - the
    classic silent-garbage failure mode.

    Raises:
        ConfigurationError: when ``theta`` is not in ``(0, 1]``.
    """
    if not isinstance(theta, (int, float)) or isinstance(theta, bool):
        raise ConfigurationError(f"theta must be a number in (0, 1], got {theta!r}")
    if not 0.0 < theta <= 1.0:
        raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
    return float(theta)


def calc_pred(
    hierarchy: Hierarchy,
    prefix: PrefixKey,
    selected: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
) -> float:
    """Compute the predecessor adjustment of the conditioned-frequency estimate.

    In one dimension this is Algorithm 2: subtract the lower-bound frequency of
    every already-selected HHH that ``prefix`` most closely generalizes
    (``G(p|P)``).  In two dimensions this is Algorithm 3: additionally add back
    the upper-bound frequency of the greatest lower bound of every pair of such
    prefixes (inclusion-exclusion), unless a third member of ``G(p|P)``
    already generalizes that glb.

    Args:
        hierarchy: the hierarchical domain.
        prefix: the candidate prefix ``p`` as a ``(node, value)`` tuple.
        selected: the already-selected HHH prefixes ``P``.
        lower_bound: maps a prefix to a lower bound of its frequency (``f^-``).
        upper_bound: maps a prefix to an upper bound of its frequency (``f^+``).

    Returns:
        the (usually negative) adjustment ``R`` to add to ``f^+_p``.
    """
    closest = hierarchy.closest_descendants(prefix, selected)
    return _pred_from_closest(hierarchy, closest, lower_bound, upper_bound)


def _pred_from_closest(
    hierarchy: Hierarchy,
    closest: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
) -> float:
    """The adjustment ``R`` given an already-computed ``G(p|P)`` set."""
    result = 0.0
    for h in closest:
        result -= lower_bound(h)
    if hierarchy.dimensions >= 2 and len(closest) >= 2:
        for i in range(len(closest)):
            for j in range(i + 1, len(closest)):
                h, h_prime = closest[i], closest[j]
                q = hierarchy.glb(h, h_prime)
                if q is None:
                    continue
                covered_by_third = any(
                    h3 not in (h, h_prime) and hierarchy.is_ancestor(h3, q) for h3 in closest
                )
                if not covered_by_third:
                    result += upper_bound(q)
    return result


def _pred_with_deps(
    hierarchy: Hierarchy,
    closest: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
    deps: set,
) -> float:
    """:func:`_pred_from_closest` with dependency tracking for the output cache.

    Performs the exact floating-point operations of the reference, in the
    same order, and additionally records into ``deps`` the lattice node of
    every prefix whose bound the adjustment read - the nodes whose counter
    state the cached value depends on.
    """
    result = 0.0
    for h in closest:
        result -= lower_bound(h)
        deps.add(h[0])
    if hierarchy.dimensions >= 2 and len(closest) >= 2:
        for i in range(len(closest)):
            for j in range(i + 1, len(closest)):
                h, h_prime = closest[i], closest[j]
                q = hierarchy.glb(h, h_prime)
                if q is None:
                    continue
                covered_by_third = any(
                    h3 not in (h, h_prime) and hierarchy.is_ancestor(h3, q) for h3 in closest
                )
                if not covered_by_third:
                    result += upper_bound(q)
                    deps.add(q[0])
    return result


class _Entry:
    """One tracked prefix of a cached Output pass.

    ``lower``/``upper`` are the scaled frequency bounds at pass time (valid
    while the prefix's own node is clean); ``pred`` is the ``calcPred``
    adjustment and ``deps`` the lattice nodes it read bounds from (valid
    while the selection-so-far matches the cached pass and every dep node is
    clean); ``prefix_obj`` memoises the formatted
    :meth:`~repro.hierarchy.base.Hierarchy.to_prefix` object of selected
    prefixes (pure function of the prefix key, so reusable forever).
    """

    __slots__ = ("value", "lower", "upper", "pred", "deps", "prefix_obj")

    def __init__(self, value, lower: float, upper: float, pred: float, deps: Tuple[int, ...], prefix_obj) -> None:
        self.value = value
        self.lower = lower
        self.upper = upper
        self.pred = pred
        self.deps = deps
        self.prefix_obj = prefix_obj


class _CachedPass:
    """The reusable state of one completed Output pass at one theta."""

    __slots__ = ("versions", "scale", "node_entries", "node_selected")

    def __init__(
        self,
        versions: List[int],
        scale: float,
        node_entries: List[Optional[List[_Entry]]],
        node_selected: List[Optional[list]],
    ) -> None:
        self.versions = versions
        self.scale = scale
        self.node_entries = node_entries
        self.node_selected = node_selected


class OutputCache:
    """Per-theta memo of the last Output pass, for incremental re-queries.

    Owned by a lattice engine and handed to :func:`lattice_output` together
    with the engine's per-node version counters; everything else (storage,
    lookup, eviction, invalidation) is internal.  One cached pass is kept per
    distinct theta, up to ``max_thetas`` (least-recently-queried evicted
    beyond that), because the selection sequence - and therefore every
    cached adjustment - depends on the threshold.

    :meth:`invalidate` drops every pass; engines call it whenever counter
    state is replaced wholesale (checkpoint restore), since version counters
    from a different timeline could coincidentally match.
    """

    __slots__ = ("_passes", "_max_thetas")

    def __init__(self, max_thetas: int = 8) -> None:
        self._passes: "OrderedDict[float, _CachedPass]" = OrderedDict()
        self._max_thetas = max_thetas

    def invalidate(self) -> None:
        """Forget every cached pass (the next query recomputes from scratch)."""
        self._passes.clear()

    def _pass_for(self, theta: float) -> Optional[_CachedPass]:
        cached = self._passes.get(theta)
        if cached is not None:
            self._passes.move_to_end(theta)
        return cached

    def _store(self, theta: float, pass_: _CachedPass) -> None:
        self._passes[theta] = pass_
        self._passes.move_to_end(theta)
        while len(self._passes) > self._max_thetas:
            self._passes.popitem(last=False)


def _deps_clean(deps: Tuple[int, ...], versions: Sequence[int], prev_versions: Sequence[int]) -> bool:
    """True when every lattice node a cached adjustment read is unchanged."""
    for node in deps:
        if versions[node] != prev_versions[node]:
            return False
    return True


def _incremental_output(
    hierarchy: Hierarchy,
    counters: Sequence[CounterAlgorithm],
    theta: float,
    total: int,
    scale: float,
    correction: float,
    versions: Sequence[int],
    cache: OutputCache,
) -> HHHOutput:
    """The Output procedure against a cached previous pass (bit-identical).

    Invalidation model (the streaming-parity suite pins every clause):

    * the threshold and the correction depend on ``total``, which moves on
      every update - both are recomputed fresh each pass, never cached;
    * a *clean* node (version unchanged) keeps its value enumeration and
      scaled bounds; a dirty node is re-enumerated and its bounds recomputed;
    * a cached ``calcPred`` adjustment is reused only while (a) the selection
      sequence of every earlier node matches the cached pass (same-node
      selections can never be each other's closest descendants, so
      within-node divergence does not invalidate within-node adjustments)
      and (b) every node the adjustment read bounds from is clean;
    * the first node whose selection list diverges flips ``matching`` off,
      forcing fresh adjustments for everything downstream against a
      :class:`SelectedIndex` rebuilt from the current selections in
      insertion order.
    """
    threshold = theta * total
    prev = cache._pass_for(theta)
    if prev is not None and prev.scale != scale:
        prev = None
    prev_versions = prev.versions if prev is not None else None

    def upper(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].upper_bound(value) * scale

    def lower(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].lower_bound(value) * scale

    selected: List[PrefixKey] = []
    index: Optional[SelectedIndex] = None
    candidates: List[HHHCandidate] = []
    size = hierarchy.size
    new_entries: List[Optional[List[_Entry]]] = [None] * size
    new_selected: List[Optional[list]] = [None] * size
    matching = prev is not None

    def fresh_pred(prefix: PrefixKey) -> Tuple[float, Tuple[int, ...]]:
        nonlocal index
        if index is None:
            index = SelectedIndex(hierarchy)
            for p in selected:
                index.add(p)
        deps: set = set()
        pred = _pred_with_deps(
            hierarchy, index.closest_descendants(prefix), lower, upper, deps
        )
        return pred, tuple(deps)

    for node in hierarchy.output_order():
        node_clean = prev_versions is not None and versions[node] == prev_versions[node]
        prev_node_entries = prev.node_entries[node] if prev is not None else None
        node_selected: list = []
        if node_clean:
            # Values and bounds are valid even when the selection diverged;
            # only the adjustments are conditionally reusable.
            entries = prev_node_entries
            for entry in entries:
                if matching and _deps_clean(entry.deps, versions, prev_versions):
                    pred = entry.pred
                else:
                    pred, deps = fresh_pred((node, entry.value))
                    entry.pred = pred
                    entry.deps = deps
                estimate = entry.upper + pred + correction
                if estimate >= threshold:
                    value = entry.value
                    prefix = (node, value)
                    selected.append(prefix)
                    if index is not None:
                        index.add(prefix)
                    node_selected.append(value)
                    if entry.prefix_obj is None:
                        entry.prefix_obj = hierarchy.to_prefix(prefix)
                    candidates.append(
                        HHHCandidate(
                            prefix=entry.prefix_obj,
                            lower_bound=entry.lower,
                            upper_bound=entry.upper,
                            conditioned_estimate=estimate,
                        )
                    )
        else:
            prev_by_value = (
                {entry.value: entry for entry in prev_node_entries}
                if prev_node_entries is not None
                else None
            )
            entries = []
            for value in list(counters[node]):
                prefix = (node, value)
                up = upper(prefix)
                lo = lower(prefix)
                prev_entry = prev_by_value.get(value) if prev_by_value is not None else None
                # The adjustment reads *other* prefixes' bounds, never this
                # node's own counter, so it survives this node's dirtiness.
                if (
                    matching
                    and prev_entry is not None
                    and _deps_clean(prev_entry.deps, versions, prev_versions)
                ):
                    pred = prev_entry.pred
                    deps = prev_entry.deps
                else:
                    pred, deps = fresh_pred(prefix)
                prefix_obj = prev_entry.prefix_obj if prev_entry is not None else None
                entry = _Entry(value, lo, up, pred, deps, prefix_obj)
                entries.append(entry)
                estimate = up + pred + correction
                if estimate >= threshold:
                    selected.append(prefix)
                    if index is not None:
                        index.add(prefix)
                    node_selected.append(value)
                    if entry.prefix_obj is None:
                        entry.prefix_obj = hierarchy.to_prefix(prefix)
                    candidates.append(
                        HHHCandidate(
                            prefix=entry.prefix_obj,
                            lower_bound=lo,
                            upper_bound=up,
                            conditioned_estimate=estimate,
                        )
                    )
        new_entries[node] = entries
        new_selected[node] = node_selected
        if matching and node_selected != prev.node_selected[node]:
            matching = False
    cache._store(
        theta, _CachedPass(list(versions), scale, new_entries, new_selected)
    )
    return HHHOutput(candidates=candidates, total=total, threshold=threshold)


def conditioned_frequency_estimate(
    hierarchy: Hierarchy,
    prefix: PrefixKey,
    selected: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
    correction: float,
) -> float:
    """Conservative conditioned-frequency estimate ``C^_{p|P}`` (Algorithm 1, lines 12-13)."""
    return upper_bound(prefix) + calc_pred(hierarchy, prefix, selected, lower_bound, upper_bound) + correction


def lattice_output(
    hierarchy: Hierarchy,
    counters: Sequence[CounterAlgorithm],
    theta: float,
    total: int,
    *,
    scale: float = 1.0,
    correction: float = 0.0,
    use_index: bool = True,
    versions: Optional[Sequence[int]] = None,
    cache: Optional[OutputCache] = None,
) -> HHHOutput:
    """Run the Output procedure over a per-lattice-node array of counter summaries.

    Scans lattice nodes from the most specific to the most general (the order
    Definition 8 builds the exact HHH set in), computes the conservative
    conditioned frequency of every tracked prefix against the already-selected
    set ``P``, and selects prefixes whose estimate reaches ``theta * total``.

    Args:
        hierarchy: the hierarchical domain.
        counters: one counter summary per lattice node (indexed by node).
        theta: threshold fraction.
        total: stream length ``N``.
        scale: multiplier converting raw counter values to stream-level
            frequencies (``V`` for RHHH, 1 for MST).
        correction: additive sampling-error compensation in stream-level units.
        use_index: resolve ``G(p|P)`` through a :class:`SelectedIndex`
            (default) instead of the unindexed
            ``hierarchy.closest_descendants`` scan; both produce bit-identical
            outputs (the parity tests pin this) - the flag exists so the
            reference path stays exercised and comparable.
        versions: per-lattice-node update counters maintained by the engine;
            together with ``cache`` this routes the query through the
            incremental pass (bit-identical to the from-scratch scan, pinned
            by the streaming-parity suite).  ``None`` (either one) keeps the
            from-scratch path.
        cache: the engine's persistent :class:`OutputCache`.

    Returns:
        an :class:`~repro.core.base.HHHOutput` with the selected candidates.
    """
    if len(counters) != hierarchy.size:
        raise ValueError(
            f"expected {hierarchy.size} counter instances (one per lattice node), got {len(counters)}"
        )
    if total == 0:
        # An empty stream has no heavy hitters.  Without this, threshold
        # would be 0.0 and any counter residue (state restored from a
        # checkpoint before feeding, a template holding merged counters)
        # would select every tracked prefix.
        return HHHOutput(candidates=[], total=total, threshold=theta * total)
    if versions is not None and cache is not None:
        return _incremental_output(
            hierarchy, counters, theta, total, scale, correction, versions, cache
        )
    threshold = theta * total

    def upper(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].upper_bound(value) * scale

    def lower(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].lower_bound(value) * scale

    selected: List[PrefixKey] = []
    index: Optional[SelectedIndex] = SelectedIndex(hierarchy) if use_index else None
    candidates: List[HHHCandidate] = []
    for node in hierarchy.output_order():
        for value in list(counters[node]):
            prefix: PrefixKey = (node, value)
            if index is not None:
                closest = index.closest_descendants(prefix)
                estimate = upper(prefix) + _pred_from_closest(
                    hierarchy, closest, lower, upper
                ) + correction
            else:
                estimate = conditioned_frequency_estimate(
                    hierarchy, prefix, selected, lower, upper, correction
                )
            if estimate >= threshold:
                selected.append(prefix)
                if index is not None:
                    index.add(prefix)
                candidates.append(
                    HHHCandidate(
                        prefix=hierarchy.to_prefix(prefix),
                        lower_bound=lower(prefix),
                        upper_bound=upper(prefix),
                        conditioned_estimate=estimate,
                    )
                )
    return HHHOutput(candidates=candidates, total=total, threshold=threshold)
