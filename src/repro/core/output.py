"""The Output procedure of Algorithm 1 and the ``calcPred`` helpers (Algorithms 2 and 3).

The same code serves RHHH and the lattice-based baselines (MST and the naive
sampling baseline): they differ only in the ``scale`` applied to raw counter
values (``V`` for RHHH because each counter sees roughly a ``1/V`` sample of
the stream, ``1`` for MST) and in the additive ``correction`` term of
Algorithm 1 line 13 (``2 Z_{1-delta} sqrt(N V)`` for RHHH, ``0`` for the
deterministic baselines).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import HHHCandidate, HHHOutput
from repro.exceptions import ConfigurationError
from repro.hh.base import CounterAlgorithm
from repro.hierarchy.base import Hierarchy, PrefixKey

#: A function mapping an internal ``(node, value)`` prefix to a frequency bound.
BoundFn = Callable[[PrefixKey], float]


class SelectedIndex:
    """Masked-value index of selected HHH prefixes for fast ``G(p|P)`` queries.

    ``Hierarchy.closest_descendants`` scans the *whole* selected set (one
    ``is_proper_ancestor`` each) for every candidate prefix, which makes the
    Output procedure quadratic in the candidate count - painful at small
    theta, where hundreds of prefixes pass the threshold.  This index caps
    that scan two ways:

    * selected prefixes are grouped by lattice node, and a query skips whole
      groups whose node cannot be generalized to the query node at all
      (node-to-node reachability is value-independent by the
      :meth:`~repro.hierarchy.base.Hierarchy.generalize_prefix` contract -
      ``None`` means the *nodes* are incomparable - so one probe per node
      pair is cached);
    * within a reachable group, candidates are bucketed by their value masked
      to the query node, built lazily once per ``(candidate node, query
      node)`` pair and kept current by :meth:`add`.  A prefix ``p``
      generalizes exactly the candidates in the bucket of ``p``'s own value,
      so each query is one dict lookup per reachable node instead of a pass
      over every selected prefix.

    Results are returned in selection (insertion) order - exactly the order
    the unindexed reference produces - so the floating-point summations in
    ``calc_pred`` are bit-identical to the reference; the parity tests pin
    this.
    """

    def __init__(self, hierarchy: Hierarchy) -> None:
        self._hierarchy = hierarchy
        self._by_node: Dict[int, List[Tuple[int, PrefixKey]]] = {}
        self._order = 0
        #: (candidate node, query node) -> can any prefix at candidate node be
        #: masked to query node?
        self._node_reaches: Dict[Tuple[int, int], bool] = {}
        #: (candidate node, query node) -> {masked value: [(order, prefix)]}
        self._masked: Dict[Tuple[int, int], Dict] = {}

    def __len__(self) -> int:
        return self._order

    def add(self, prefix: PrefixKey) -> None:
        """Record a newly selected prefix (and refresh the lazy mask buckets)."""
        node = prefix[0]
        entry = (self._order, prefix)
        self._by_node.setdefault(node, []).append(entry)
        self._order += 1
        for (candidate_node, query_node), buckets in self._masked.items():
            if candidate_node == node:
                masked = self._hierarchy.generalize_prefix(prefix, query_node)
                buckets.setdefault(masked, []).append(entry)

    def _buckets(self, candidate_node: int, query_node: int) -> Dict:
        """The masked-value buckets of one reachable node pair (built lazily)."""
        pair = (candidate_node, query_node)
        buckets = self._masked.get(pair)
        if buckets is None:
            buckets = {}
            generalize_prefix = self._hierarchy.generalize_prefix
            for entry in self._by_node[candidate_node]:
                buckets.setdefault(generalize_prefix(entry[1], query_node), []).append(entry)
            self._masked[pair] = buckets
        return buckets

    def closest_descendants(self, prefix: PrefixKey) -> List[PrefixKey]:
        """``G(prefix | selected)``, identical to the unindexed reference.

        Equivalent to ``hierarchy.closest_descendants(prefix, selected)`` with
        ``selected`` in insertion order, but resolved through the node-pair
        reachability cache and the masked-value buckets.
        """
        node, value = prefix
        hierarchy = self._hierarchy
        reaches = self._node_reaches
        below: List[Tuple[int, PrefixKey]] = []
        for candidate_node, entries in self._by_node.items():
            compatible = reaches.get((candidate_node, node))
            if compatible is None:
                compatible = hierarchy.generalize_prefix(entries[0][1], node) is not None
                reaches[(candidate_node, node)] = compatible
            if not compatible:
                continue
            for entry in self._buckets(candidate_node, node).get(value, ()):
                if entry[1] != prefix:
                    below.append(entry)
        below.sort()
        candidates = [candidate for _, candidate in below]
        return [
            c
            for c in candidates
            if not any(
                other != c and hierarchy.is_proper_ancestor(other, c) for other in candidates
            )
        ]


def validate_theta(theta: float) -> float:
    """Validate the HHH threshold fraction and return it.

    Every ``output(theta)`` entry point shares this check: a ``theta`` outside
    ``(0, 1]`` would make the ``theta * N`` threshold non-positive (reporting
    everything) or unreachable (reporting nothing) without any error - the
    classic silent-garbage failure mode.

    Raises:
        ConfigurationError: when ``theta`` is not in ``(0, 1]``.
    """
    if not isinstance(theta, (int, float)) or isinstance(theta, bool):
        raise ConfigurationError(f"theta must be a number in (0, 1], got {theta!r}")
    if not 0.0 < theta <= 1.0:
        raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
    return float(theta)


def calc_pred(
    hierarchy: Hierarchy,
    prefix: PrefixKey,
    selected: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
) -> float:
    """Compute the predecessor adjustment of the conditioned-frequency estimate.

    In one dimension this is Algorithm 2: subtract the lower-bound frequency of
    every already-selected HHH that ``prefix`` most closely generalizes
    (``G(p|P)``).  In two dimensions this is Algorithm 3: additionally add back
    the upper-bound frequency of the greatest lower bound of every pair of such
    prefixes (inclusion-exclusion), unless a third member of ``G(p|P)``
    already generalizes that glb.

    Args:
        hierarchy: the hierarchical domain.
        prefix: the candidate prefix ``p`` as a ``(node, value)`` tuple.
        selected: the already-selected HHH prefixes ``P``.
        lower_bound: maps a prefix to a lower bound of its frequency (``f^-``).
        upper_bound: maps a prefix to an upper bound of its frequency (``f^+``).

    Returns:
        the (usually negative) adjustment ``R`` to add to ``f^+_p``.
    """
    closest = hierarchy.closest_descendants(prefix, selected)
    return _pred_from_closest(hierarchy, closest, lower_bound, upper_bound)


def _pred_from_closest(
    hierarchy: Hierarchy,
    closest: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
) -> float:
    """The adjustment ``R`` given an already-computed ``G(p|P)`` set."""
    result = 0.0
    for h in closest:
        result -= lower_bound(h)
    if hierarchy.dimensions >= 2 and len(closest) >= 2:
        for i in range(len(closest)):
            for j in range(i + 1, len(closest)):
                h, h_prime = closest[i], closest[j]
                q = hierarchy.glb(h, h_prime)
                if q is None:
                    continue
                covered_by_third = any(
                    h3 not in (h, h_prime) and hierarchy.is_ancestor(h3, q) for h3 in closest
                )
                if not covered_by_third:
                    result += upper_bound(q)
    return result


def conditioned_frequency_estimate(
    hierarchy: Hierarchy,
    prefix: PrefixKey,
    selected: Sequence[PrefixKey],
    lower_bound: BoundFn,
    upper_bound: BoundFn,
    correction: float,
) -> float:
    """Conservative conditioned-frequency estimate ``C^_{p|P}`` (Algorithm 1, lines 12-13)."""
    return upper_bound(prefix) + calc_pred(hierarchy, prefix, selected, lower_bound, upper_bound) + correction


def lattice_output(
    hierarchy: Hierarchy,
    counters: Sequence[CounterAlgorithm],
    theta: float,
    total: int,
    *,
    scale: float = 1.0,
    correction: float = 0.0,
    use_index: bool = True,
) -> HHHOutput:
    """Run the Output procedure over a per-lattice-node array of counter summaries.

    Scans lattice nodes from the most specific to the most general (the order
    Definition 8 builds the exact HHH set in), computes the conservative
    conditioned frequency of every tracked prefix against the already-selected
    set ``P``, and selects prefixes whose estimate reaches ``theta * total``.

    Args:
        hierarchy: the hierarchical domain.
        counters: one counter summary per lattice node (indexed by node).
        theta: threshold fraction.
        total: stream length ``N``.
        scale: multiplier converting raw counter values to stream-level
            frequencies (``V`` for RHHH, 1 for MST).
        correction: additive sampling-error compensation in stream-level units.
        use_index: resolve ``G(p|P)`` through a :class:`SelectedIndex`
            (default) instead of the unindexed
            ``hierarchy.closest_descendants`` scan; both produce bit-identical
            outputs (the parity tests pin this) - the flag exists so the
            reference path stays exercised and comparable.

    Returns:
        an :class:`~repro.core.base.HHHOutput` with the selected candidates.
    """
    if len(counters) != hierarchy.size:
        raise ValueError(
            f"expected {hierarchy.size} counter instances (one per lattice node), got {len(counters)}"
        )
    threshold = theta * total

    def upper(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].upper_bound(value) * scale

    def lower(prefix: PrefixKey) -> float:
        node, value = prefix
        return counters[node].lower_bound(value) * scale

    selected: List[PrefixKey] = []
    index: Optional[SelectedIndex] = SelectedIndex(hierarchy) if use_index else None
    candidates: List[HHHCandidate] = []
    for node in hierarchy.output_order():
        for value in list(counters[node]):
            prefix: PrefixKey = (node, value)
            if index is not None:
                closest = index.closest_descendants(prefix)
                estimate = upper(prefix) + _pred_from_closest(
                    hierarchy, closest, lower, upper
                ) + correction
            else:
                estimate = conditioned_frequency_estimate(
                    hierarchy, prefix, selected, lower, upper, correction
                )
            if estimate >= threshold:
                selected.append(prefix)
                if index is not None:
                    index.add(prefix)
                candidates.append(
                    HHHCandidate(
                        prefix=hierarchy.to_prefix(prefix),
                        lower_bound=lower(prefix),
                        upper_bound=upper(prefix),
                        conditioned_estimate=estimate,
                    )
                )
    return HHHOutput(candidates=candidates, total=total, threshold=threshold)
