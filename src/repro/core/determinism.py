"""Seed resolution: ``seed=None`` means the fixed spec default, never entropy.

Every generator and sampling component in the repo takes an optional
``seed``.  Before this module, omitting it fell through to
``np.random.default_rng(None)`` - OS entropy, an RNG stream no replay can
ever reproduce, silently breaking the repo's bit-identical-replay
guarantee for anyone who forgot to thread a seed.  :func:`resolve_seed`
closes that hole: explicit seeds pass through untouched, and an omitted
seed resolves to :data:`DEFAULT_SEED`, so a default-constructed component
is exactly as reproducible as a seeded one.

The ``determinism-default-none-seed`` reprolint rule enforces the pattern:
RNG constructors must not consume a parameter whose declared default is
``None`` directly - route it through ``resolve_seed(...)`` at the call
site.
"""

from __future__ import annotations

from typing import Optional

#: The seed an omitted ``seed=None`` resolves to.  The value spells "RHHH"
#: in ASCII; it is arbitrary but frozen - changing it changes every
#: default-seeded stream in the repo.
DEFAULT_SEED = 0x52484848


def resolve_seed(seed: Optional[int]) -> int:
    """Return ``seed`` unchanged, or :data:`DEFAULT_SEED` when it is None.

    Use inline at the RNG construction site::

        self._rng = np.random.default_rng(resolve_seed(seed))

    so the deterministic default is visible exactly where the stream is
    created.
    """
    return DEFAULT_SEED if seed is None else seed
