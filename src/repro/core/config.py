"""Configuration of an RHHH instance.

The paper's guarantees compose two error sources: the per-packet sampling
process (parameters ``epsilon_s``, ``delta_s``) and the underlying counter
algorithm (``epsilon_a``, ``delta_a``).  Theorem 6.6 shows the overall
guarantee is ``epsilon = epsilon_a + epsilon_s`` and
``delta = delta_a + 2 * delta_s``.  :class:`RHHHConfig` lets a caller specify
either the overall targets (which are then split evenly) or the individual
components, applies the over-sample correction of Corollary 6.5 to the counter
size, and exposes the convergence bound ``psi``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.bounds import coverage_correction, oversample_adjusted_counters, psi
from repro.exceptions import ConfigurationError
from repro.hh.factory import CounterLike


@dataclass(frozen=True)
class RHHHConfig:
    """Parameters of an RHHH run.

    Attributes:
        h: the hierarchy size ``H`` (number of lattice nodes).
        epsilon: overall accuracy target; split evenly between ``epsilon_a``
            and ``epsilon_s`` unless those are given explicitly.
        delta: overall confidence target; split as ``delta_a = delta / 2`` and
            ``delta_s = delta / 4`` (so that ``delta_a + 2 delta_s = delta``)
            unless given explicitly.
        v: the performance parameter ``V >= H``.  ``None`` selects ``V = H``
            (the plain "RHHH" configuration); ``V = 10 H`` is the paper's
            "10-RHHH".
        epsilon_a, epsilon_s, delta_a, delta_s: optional explicit splits.
        counter: the per-node counter backend - a registered backend name, a
            :class:`~repro.api.specs.CounterSpec` (which is how the
            memory-budget auto-selection ``CounterSpec(auto=True,
            memory_bytes=...)`` plugs in), or a ``factory(epsilon)`` callable.
        seed: RNG seed for the level-selection randomness; ``None`` uses
            nondeterministic seeding.
    """

    h: int
    epsilon: float = 0.001
    delta: float = 0.001
    v: Optional[int] = None
    epsilon_a: Optional[float] = None
    epsilon_s: Optional[float] = None
    delta_a: Optional[float] = None
    delta_s: Optional[float] = None
    counter: CounterLike = "space_saving"
    seed: Optional[int] = None
    # Derived fields (filled in __post_init__).
    effective_v: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.h < 1:
            raise ConfigurationError(f"H must be >= 1, got {self.h}")
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {self.delta}")
        v = self.v if self.v is not None else self.h
        if v < self.h:
            raise ConfigurationError(f"V must be >= H (got V={v}, H={self.h})")
        object.__setattr__(self, "effective_v", int(v))
        for name, value in (
            ("epsilon_a", self.epsilon_a),
            ("epsilon_s", self.epsilon_s),
            ("delta_a", self.delta_a),
            ("delta_s", self.delta_s),
        ):
            if value is not None and not 0.0 < value < 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1), got {value}")

    # ------------------------------------------------------------------ #
    # error splits
    # ------------------------------------------------------------------ #

    @property
    def resolved_epsilon_a(self) -> float:
        """Counter-algorithm error target (default: ``epsilon / 2``)."""
        return self.epsilon_a if self.epsilon_a is not None else self.epsilon / 2.0

    @property
    def resolved_epsilon_s(self) -> float:
        """Sampling error target (default: ``epsilon / 2``)."""
        return self.epsilon_s if self.epsilon_s is not None else self.epsilon / 2.0

    @property
    def resolved_delta_a(self) -> float:
        """Counter-algorithm confidence target (default: ``delta / 2``)."""
        return self.delta_a if self.delta_a is not None else self.delta / 2.0

    @property
    def resolved_delta_s(self) -> float:
        """Sampling confidence target (default: ``delta / 4``)."""
        return self.delta_s if self.delta_s is not None else self.delta / 4.0

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #

    @property
    def counter_epsilon(self) -> float:
        """Per-node counter error after the over-sample correction (Corollary 6.5).

        ``epsilon_a' = epsilon_a / (1 + epsilon_s)`` so that even a node that
        receives ``(1 + epsilon_s) N / V`` updates stays within ``epsilon_a``.
        """
        return self.resolved_epsilon_a / (1.0 + self.resolved_epsilon_s)

    @property
    def counters_per_node(self) -> int:
        """Number of counters allocated per lattice node."""
        return oversample_adjusted_counters(self.resolved_epsilon_a, self.resolved_epsilon_s)

    @property
    def convergence_bound(self) -> float:
        """The convergence bound ``psi`` of Theorem 6.3 for this configuration."""
        return psi(self.resolved_delta_s, self.resolved_epsilon_s, self.effective_v)

    @property
    def update_probability(self) -> float:
        """Probability that a packet updates any counter at all (``H / V``)."""
        return self.h / self.effective_v

    def correction(self, n: int) -> float:
        """The additive conditioned-frequency correction for a stream of length ``n``."""
        return coverage_correction(n, self.effective_v, self.delta)

    def total_counters(self) -> int:
        """Total flow-table entries across the lattice (Theorem 6.19)."""
        return self.h * self.counters_per_node

    def is_converged(self, n: int) -> bool:
        """True once ``n`` packets exceed the convergence bound ``psi``."""
        return n > self.convergence_bound

    @property
    def counter_label(self) -> str:
        """A short human-readable name of the counter backend."""
        if isinstance(self.counter, str):
            return self.counter
        name = getattr(self.counter, "name", None)  # CounterSpec
        if isinstance(name, str):
            return f"auto({name})" if getattr(self.counter, "auto", False) else name
        return getattr(self.counter, "__name__", "custom")

    def describe(self) -> str:
        """Return a human-readable multi-line summary of the configuration."""
        return "\n".join(
            [
                f"RHHH configuration: H={self.h}, V={self.effective_v} "
                f"(update probability {self.update_probability:.3f})",
                f"  epsilon = {self.epsilon} (counter {self.resolved_epsilon_a}, sample {self.resolved_epsilon_s})",
                f"  delta   = {self.delta} (counter {self.resolved_delta_a}, sample {self.resolved_delta_s})",
                f"  counter algorithm = {self.counter_label} with {self.counters_per_node} counters/node "
                f"({self.total_counters()} total)",
                f"  convergence bound psi = {self.convergence_bound:,.0f} packets",
            ]
        )


def ten_rhhh_config(h: int, **kwargs) -> RHHHConfig:
    """Convenience constructor for the paper's "10-RHHH" configuration (``V = 10 H``)."""
    return RHHHConfig(h=h, v=10 * h, **kwargs)
