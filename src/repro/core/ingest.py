"""Overlapped trace ingest: a bounded ring buffer between reader and engine.

The batch engine made the per-packet *measurement* cost O(1), but a replay
loop still alternates ``read batch -> update_batch -> read batch``: while the
engine crunches one batch the reader sits idle and vice versa.  This module
overlaps the two with a classic bounded producer/consumer stage:

* the **producer** is a daemon thread draining any batch iterable (typically
  :func:`repro.traffic.trace_io.trace_key_batches`, whose v2 path yields
  zero-copy memmap views - the thread does the page faults, decoding and
  re-chunking off the consumer's critical path);
* the **ring** is a fixed array of ``depth`` slots guarded by one lock and
  two condition variables; a full ring blocks the producer (backpressure - at
  most ``depth`` batches are ever in flight, so memory stays bounded no
  matter how fast the reader is);
* the **consumer** is whoever iterates the :class:`RingBufferIngest` -
  :meth:`repro.api.session.Session.feed_batches` in the wired-up pipeline.

Shutdown semantics, which the differential ingest-parity suite pins:

* **exhaustion**: the producer finishes, the consumer drains the remaining
  slots, iteration ends - the consumed batch sequence is *identical* to
  iterating the source inline;
* **producer error**: the exception is captured, all batches produced before
  it are still delivered in order, then the original exception is re-raised
  in the consumer (so a half-fed algorithm state matches an inline feed of
  the same prefix);
* **early close**: :meth:`close` (or leaving the ``with`` block) wakes a
  blocked producer, which stops without reading further; the thread is
  joined.  Iterating after an early close raises
  :class:`~repro.exceptions.IngestError` rather than silently truncating the
  stream.

Because the payloads are numpy arrays handed over by reference, the stage
copies nothing; the GIL is released during the producer's memmap page faults
and numpy slicing, which is where the overlap gain comes from.
"""

from __future__ import annotations

import threading
from typing import Generic, Iterable, Iterator, Optional, TypeVar

from repro.exceptions import ConfigurationError, IngestError

T = TypeVar("T")

#: Default ring depth: enough slots that a bursty consumer never starves,
#: small enough that in-flight batches stay a few MB.
DEFAULT_RING_DEPTH = 4


def rechunk_batches(batches: Iterable, batch_size: Optional[int] = None) -> Iterator:
    """Slice an iterable of array batches into pieces of at most ``batch_size``.

    Re-chunking only slices (views, no copies) and never merges across source
    batches, so trace-chunk boundaries also cut feed batches - a documented
    property the ingest parity gate relies on: inline and ring-buffered feeds
    of the same source see byte-identical batch sequences.  ``None`` passes
    the source batches through unchanged.
    """
    if batch_size is None:
        yield from batches
        return
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    for batch in batches:
        for lo in range(0, len(batch), batch_size):
            yield batch[lo : lo + batch_size]


class RingBufferIngest(Generic[T]):
    """Bounded single-producer/single-consumer ring over a batch iterable.

    Args:
        source: the batch iterable to drain; consumed on a daemon thread that
            starts immediately (prefetch begins before the first ``next``).
        depth: ring capacity in batches; the producer blocks when the ring is
            full (backpressure).
        fault_plan: optional :class:`~repro.core.faults.FaultPlan` whose
            ``ingest_error`` events fire inside the producer at their
            scheduled batch indices - the prefix produced before the event
            is still delivered in order, then the injected
            :class:`~repro.exceptions.FaultInjectionError` re-raises in the
            consumer, exercising exactly the producer-error shutdown path.

    Iterate the instance to consume; use it as a context manager (or call
    :meth:`close`) to guarantee the producer thread is stopped and joined
    even when the consumer abandons the stream early.
    """

    def __init__(
        self,
        source: Iterable[T],
        *,
        depth: int = DEFAULT_RING_DEPTH,
        fault_plan=None,
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"ring depth must be >= 1, got {depth}")
        if fault_plan is not None:
            source = fault_plan.wrap_batches(source, kind="ingest_error")
        self._depth = depth
        self._slots: list = [None] * depth
        self._head = 0
        self._tail = 0
        self._count = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._done = False
        self._error: Optional[BaseException] = None
        self._produced = 0
        self._consumed = 0
        self._source = source
        self._thread = threading.Thread(
            target=self._produce, name="trace-ingest", daemon=True
        )
        self._thread.start()

    # introspection ------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """Ring capacity in batches."""
        return self._depth

    @property
    def produced(self) -> int:
        """Batches the producer has placed into the ring so far."""
        with self._lock:
            return self._produced

    @property
    def consumed(self) -> int:
        """Batches the consumer has taken out of the ring so far."""
        with self._lock:
            return self._consumed

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        with self._lock:
            return self._closed

    # producer ----------------------------------------------------------- #

    def _produce(self) -> None:
        try:
            for item in self._source:
                if not self._offer(item):
                    return  # closed while we were blocked: stop reading
        except BaseException as exc:  # noqa: B036 - delivered to the consumer
            with self._lock:
                self._error = exc
                self._not_empty.notify_all()
        finally:
            with self._lock:
                self._done = True
                self._not_empty.notify_all()

    def _offer(self, item: T) -> bool:
        with self._not_full:
            while self._count == self._depth and not self._closed:
                self._not_full.wait()
            if self._closed:
                return False
            self._slots[self._tail] = item
            self._tail = (self._tail + 1) % self._depth
            self._count += 1
            self._produced += 1
            self._not_empty.notify()
            return True

    # consumer ----------------------------------------------------------- #

    def __iter__(self) -> Iterator[T]:
        return self

    def __next__(self) -> T:
        with self._not_empty:
            while True:
                if self._count:
                    item = self._slots[self._head]
                    self._slots[self._head] = None  # drop the reference promptly
                    self._head = (self._head + 1) % self._depth
                    self._count -= 1
                    self._consumed += 1
                    self._not_full.notify()
                    return item
                if self._closed:
                    raise IngestError(
                        "reading from a closed ingest ring (close() ran before "
                        "the stream was drained)"
                    )
                if self._error is not None:
                    raise self._error
                if self._done:
                    raise StopIteration
                self._not_empty.wait()

    # lifecycle ---------------------------------------------------------- #

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop the producer and release the ring; idempotent.

        Safe to call mid-stream: a producer blocked on a full ring wakes up
        and exits without reading further from the source.  The producer
        thread is joined (bounded by ``timeout``; it is a daemon thread, so a
        source stuck in IO cannot hang interpreter exit either).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Drop buffered references so memmap views don't pin the file.
            self._slots = [None] * self._depth
            self._head = self._tail = self._count = 0
            self._not_full.notify_all()
            self._not_empty.notify_all()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RingBufferIngest[T]":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
