"""Shared machinery of the vectorized batch-update engines.

Three lattice algorithms feed whole packet batches into their per-node
counters:

* :class:`~repro.core.rhhh.RHHH` routes each update to **one random node**
  (the paper's Algorithm 1, amortized);
* :class:`~repro.hhh.mst.MST` updates **every node with every packet**;
* :class:`~repro.hhh.sampled_mst.SampledMST` updates every node with a
  **sampled subset** of the packets.

All three share the same pipeline: coerce the batch into numpy form, mask
the keys with the hierarchy's vectorized batch generalizers, pre-aggregate
duplicate masked keys so every counter sees one weighted update per distinct
key (applied in ascending key order), and hand the aggregated pairs to the
counter backend's ``update_batch``.  This module holds that pipeline; the
algorithms contribute only their routing policy (which packets reach which
node).

The aggregation order contract matters: both the vectorized paths and the
scalar reference paths (``update_batch_reference``) emit pairs in ascending
key order (lexicographic for 2-D keys), which is what makes a vectorized
feed bit-identical to its scalar specification.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def unique_totals(values: np.ndarray, weights: Optional[np.ndarray], *, axis=None):
    """Unique values (ascending) and their int64 total weights (counts if unweighted)."""
    if weights is None:
        unique, counts = np.unique(values, axis=axis, return_counts=True)
        return unique, counts.astype(np.int64)
    unique, inverse = np.unique(values, axis=axis, return_inverse=True)
    return unique, np.bincount(inverse.ravel(), weights=weights).astype(np.int64)


def aggregated_arrays(masked, weights: Optional[np.ndarray]) -> Tuple[list, np.ndarray]:
    """Aggregate duplicate masked keys into ``(key_list, total_weights)``.

    Keys come back as a plain Python list in ascending order (lexicographic
    for 2-D keys) - they are about to become dict keys inside a counter -
    and the per-key totals as an int64 array.  Both the vectorized and the
    scalar reference paths follow the same order so their counter states
    match exactly.  ``masked`` is a numpy array from a vectorized batch
    generalizer (1-D for scalar keys, ``(n, 2)`` for pairs) or a plain list
    from the scalar-loop fallback.
    """
    if isinstance(masked, np.ndarray):
        if masked.ndim == 2 and masked.dtype.kind in "iu" and masked.shape[1] == 2:
            # Pack (src, dst) pairs that fit 32 bits each into one uint64 so
            # np.unique runs a flat integer sort instead of the much slower
            # structured-row sort; uint64 order == lexicographic pair order.
            # OR-ing every element into one scalar checks both bounds in a
            # single reduction pass: any negative value drives the OR
            # negative, any value >= 2**32 sets a high bit.
            if masked.size == 0 or 0 <= int(np.bitwise_or.reduce(masked, axis=None)) < 1 << 32:
                packed = (masked[:, 0].astype(np.uint64) << np.uint64(32)) | masked[
                    :, 1
                ].astype(np.uint64)
                unique, totals = unique_totals(packed, weights)
                sources = (unique >> np.uint64(32)).astype(np.int64).tolist()
                destinations = (unique & np.uint64(0xFFFFFFFF)).astype(np.int64).tolist()
                return list(zip(sources, destinations)), totals
        axis = 0 if masked.ndim == 2 else None
        unique, totals = unique_totals(masked, weights, axis=axis)
        if masked.ndim == 2:
            return [tuple(row) for row in unique.tolist()], totals
        return unique.tolist(), totals
    aggregate: dict = {}
    if weights is None:
        for key in masked:
            aggregate[key] = aggregate.get(key, 0) + 1
    else:
        for key, weight in zip(masked, weights.tolist()):
            aggregate[key] = aggregate.get(key, 0) + weight
    pairs = sorted_pairs(aggregate)
    return [pair[0] for pair in pairs], np.asarray([pair[1] for pair in pairs], dtype=np.int64)


def aggregate_masked(masked, weights: Optional[np.ndarray]):
    """Aggregate duplicate masked keys into ``(key, total_weight)`` pairs.

    Pair-iterable view of :func:`aggregated_arrays`, in the same ascending
    key order; this is what a counter's generic ``update_batch`` consumes.
    """
    keys, totals = aggregated_arrays(masked, weights)
    return zip(keys, totals.tolist())


def unique_key_array(masked, weights: Optional[np.ndarray]):
    """Aggregate a numeric masked batch keeping the unique keys in array form.

    Array-native view of :func:`aggregated_arrays` for counters that declare
    ``AGGREGATED_KEY_ARRAYS`` (the sketches): same ascending key order, same
    int64 totals, but the unique keys stay a numpy array - 1-D for scalar
    keys, ``(n, 2)`` for pairs - so the counter can hash them without a
    Python list round-trip.  Returns ``(None, None)`` when the batch is not
    a numeric key array (the caller falls back to the list form).
    """
    if not isinstance(masked, np.ndarray) or masked.dtype.kind not in "iu":
        return None, None
    if masked.ndim == 1:
        return unique_totals(masked, weights)
    if masked.ndim == 2 and masked.shape[1] == 2:
        # Same packing trick (and the same single-reduction bounds check) as
        # aggregated_arrays, so both forms emit identical key order.
        if masked.size == 0 or 0 <= int(np.bitwise_or.reduce(masked, axis=None)) < 1 << 32:
            packed = (masked[:, 0].astype(np.uint64) << np.uint64(32)) | masked[:, 1].astype(
                np.uint64
            )
            unique, totals = unique_totals(packed, weights)
            pairs = np.empty((len(unique), 2), dtype=np.int64)
            pairs[:, 0] = (unique >> np.uint64(32)).astype(np.int64)
            pairs[:, 1] = (unique & np.uint64(0xFFFFFFFF)).astype(np.int64)
            return pairs, totals
        return unique_totals(masked, weights, axis=0)
    return None, None


def feed_counter(counter, masked, weights: Optional[np.ndarray]) -> None:
    """Apply an aggregated masked batch through the counter's fastest interface.

    Counters that expose ``update_aggregated(keys, weights)`` (the
    struct-of-arrays backends) receive the aggregation output verbatim -
    distinct keys plus an int64 weight array.  Backends that additionally
    declare ``AGGREGATED_KEY_ARRAYS = True`` (the sketches) get the unique
    keys as a numpy array when the batch is numeric, skipping the Python
    list round-trip entirely; everything else gets a key list, or the
    equivalent ``(key, weight)`` pair stream via ``update_batch``.
    """
    fast = getattr(counter, "update_aggregated", None)
    if fast is not None and getattr(counter, "AGGREGATED_KEY_ARRAYS", False):
        unique, totals = unique_key_array(masked, weights)
        if unique is not None:
            fast(unique, totals)
            return
    keys, totals = aggregated_arrays(masked, weights)
    if fast is not None:
        fast(keys, totals)
    else:
        counter.update_batch(zip(keys, totals.tolist()))


def feed_counter_reference(counter, pairs) -> None:
    """Scalar-reference twin of :func:`feed_counter`.

    Counters with batch-scoped semantics (the sketches: their
    ``update_batch_reference`` is *not* a per-event loop but the scalar
    specification of one aggregated batch) get their twin; everything else
    gets the plain per-key ``update`` loop, which *is* the reference
    semantics for the Space Saving family.  The scalar lattice references
    route through here so their per-node feeds stay bit-identical to the
    vectorized :func:`feed_counter` for every counter backend.
    """
    reference = getattr(counter, "update_batch_reference", None)
    if reference is not None:
        reference(pairs)
        return
    for key, weight in pairs:
        counter.update(key, weight)


def sorted_pairs(aggregate: dict) -> List[Tuple]:
    """Dict items in ascending key order (insertion order for unorderable keys)."""
    try:
        return sorted(aggregate.items())
    except TypeError:  # unorderable custom keys: keep insertion order
        return list(aggregate.items())


def coerce_key_array(keys: Sequence, n: int) -> Optional[np.ndarray]:
    """Return the batch as a numeric numpy key array, or ``None``.

    ``None`` means the keys cannot be masked vectorially (object dtype,
    ragged shape, or integers beyond 64 bits) and the caller must take its
    scalar fallback - which is required to preserve the exact batch
    semantics, only the implementation differs.
    """
    if isinstance(keys, np.ndarray):
        arr = keys
    else:
        try:
            arr = np.asarray(keys)
        except (OverflowError, ValueError):  # e.g. >64-bit IPv6 integers
            return None
    if arr.dtype == object or len(arr) != n:
        return None
    return arr


def coerce_weights(
    weights: Optional[Sequence[int]], n: int
) -> Tuple[Optional[np.ndarray], int]:
    """Validate per-packet weights and return ``(weights_array, total_weight)``.

    ``weights=None`` stands for unit weights: the array stays ``None`` (the
    aggregation paths special-case it into plain counting) and the total is
    the batch length.
    """
    if weights is None:
        return None, n
    weights_arr = np.asarray(weights, dtype=np.int64)
    if len(weights_arr) != n:
        raise ConfigurationError(
            f"weights length ({len(weights_arr)}) does not match keys length ({n})"
        )
    return weights_arr, int(weights_arr.sum())


def group_by_node(nodes: np.ndarray, packets: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
    """Group per-update node choices, yielding ``(node, packet_indices)`` pairs.

    ``nodes[i]`` is the lattice node of the ``i``-th surviving update and
    ``packets[i]`` the packet index it applies to.  Groups come out in
    ascending node order; within a group the packet indices keep their
    stream order (stable sort), which the aggregation step then normalizes
    into ascending key order.
    """
    order = np.argsort(nodes, kind="stable")
    sorted_nodes = nodes[order]
    sorted_packets = packets[order]
    unique_nodes, first = np.unique(sorted_nodes, return_index=True)
    groups = np.split(sorted_packets, first[1:])
    return zip(unique_nodes.tolist(), groups)


def apply_lattice_batch(
    counters: Sequence,
    batch_generalizers: Sequence,
    keys_arr: np.ndarray,
    weights_arr: Optional[np.ndarray],
) -> None:
    """Feed one key batch to **every** lattice node's counter (the MST policy).

    Each node's batch generalizer masks the whole key array at once;
    duplicates are pre-aggregated so the counter sees one weighted update per
    distinct masked key, in ascending key order.
    """
    for node, generalize in enumerate(batch_generalizers):
        feed_counter(counters[node], generalize(keys_arr), weights_arr)


def apply_lattice_batch_scalar(
    counters: Sequence,
    generalizers: Sequence,
    keys: Sequence,
    weights_arr: Optional[np.ndarray],
) -> None:
    """Scalar specification of :func:`apply_lattice_batch` (pure-Python loops).

    Aggregates with per-node dictionaries and hands each node's pairs to
    :func:`feed_counter_reference` in ascending key order - bit-identical to
    the vectorized path for the same batch (including counters with
    batch-scoped semantics), and the fallback for keys numpy cannot
    represent.
    """
    weight_list = weights_arr.tolist() if weights_arr is not None else None
    for node, generalize in enumerate(generalizers):
        aggregate: dict = {}
        if weight_list is None:
            for key in keys:
                masked = generalize(key)
                aggregate[masked] = aggregate.get(masked, 0) + 1
        else:
            for key, weight in zip(keys, weight_list):
                masked = generalize(key)
                aggregate[masked] = aggregate.get(masked, 0) + weight
        feed_counter_reference(counters[node], sorted_pairs(aggregate))
