"""Shard-worker supervision: timeouts, liveness, crash recovery policies.

:class:`repro.core.shard.ShardedHHH` used to talk to its worker processes
with bare ``conn.recv()`` calls: a worker killed by the OOM killer or stuck
on a bad pipe hung the whole engine forever, and a dead worker surfaced as
an anonymous ``EOFError``.  This module replaces that with a
:class:`ShardSupervisor` that owns the worker lifecycle end to end:

* every wait is ``poll()``-based with a deadline and interleaved
  ``process.is_alive()`` / exitcode liveness checks, so death and hangs are
  detected within the configured IPC timeout and reported as a typed
  :class:`~repro.exceptions.ShardFailure` naming the shard, its pid and its
  exitcode;
* a :class:`SupervisorPolicy` decides what a failure means.  ``fail``
  (default) raises immediately - the pre-supervision behaviour, minus the
  hang.  ``restart`` respawns the shard, restores its last supervision
  checkpoint (exact counter + RNG state, via
  :mod:`repro.core.checkpoint`) and replays the journal of updates
  dispatched since - the recovered worker is bit-identical to one that
  never died, so the engine's output matches the failure-free run exactly.
  ``degrade`` abandons the shard: the run continues on the survivors, the
  lost shard's checkpointed contribution is still merged at output time,
  and the packets dispatched to it since that checkpoint are reported as a
  :class:`ShardLoss` so the engine can widen its error bounds by exactly
  the unaccounted weight;
* a :class:`~repro.core.faults.FaultPlan` can be attached to fire
  deterministic worker kills and IPC delays at scheduled batch indices -
  the hook the fault-injection suite drives.

The journal/checkpoint bookkeeping only runs under the recovering policies;
``fail`` adds no per-batch state over the unsupervised engine.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.specs import AlgorithmSpec
from repro.core.checkpoint import apply_runtime_state, capture_runtime_state
from repro.exceptions import (
    AlgorithmError,
    CheckpointError,
    ConfigurationError,
    ShardFailure,
)

#: Supported failure policies.
SUPERVISOR_POLICIES = ("fail", "restart", "degrade")

#: Extra allowance for the first reply of a freshly spawned worker, which
#: pays the interpreter + numpy import cost before it can acknowledge.
_STARTUP_TIMEOUT_FLOOR = 60.0


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the supervisor reacts to shard-worker failure.

    Attributes:
        policy: ``"fail"`` (raise), ``"restart"`` (respawn from the last
            supervision checkpoint and replay the delta) or ``"degrade"``
            (continue on the survivors with quantified loss).
        timeout: seconds to wait for one worker reply before declaring a
            hang.
        poll_interval: granularity of the poll/liveness loop.
        checkpoint_every: batches between per-shard recovery snapshots
            (recovering policies only; bounds both the replay journal and
            the worst-case loss of a degraded shard).
    """

    policy: str = "fail"
    timeout: float = 30.0
    poll_interval: float = 0.05
    checkpoint_every: int = 64

    def __post_init__(self) -> None:
        if self.policy not in SUPERVISOR_POLICIES:
            raise ConfigurationError(
                f"unknown supervisor policy {self.policy!r}; expected one of {SUPERVISOR_POLICIES}"
            )
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout!r}")
        if self.poll_interval <= 0:
            raise ConfigurationError(f"poll_interval must be > 0, got {self.poll_interval!r}")
        if not isinstance(self.checkpoint_every, int) or self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be a positive int, got {self.checkpoint_every!r}"
            )

    @property
    def recovers(self) -> bool:
        """Whether this policy keeps the journal/checkpoint state recovery needs."""
        return self.policy in ("restart", "degrade")


@dataclass
class ShardLoss:
    """The quantified damage of one abandoned shard (``degrade`` policy).

    Attributes:
        shard: index of the lost shard.
        lost_packets: total weight dispatched to the shard that no surviving
            state accounts for (updates since its last checkpoint, plus
            everything routed to it after the failure).
        exitcode: the dead worker's exitcode (``-9`` for SIGKILL), or
            ``None`` for a hang.
        at_batch: engine batch index at which the failure was detected, when
            known.
        reason: the failure message.
    """

    shard: int
    lost_packets: int
    exitcode: Optional[int]
    at_batch: Optional[int]
    reason: str


# --------------------------------------------------------------------------- #
# worker process loop
# --------------------------------------------------------------------------- #


def _shard_worker(conn, hierarchy_payload, spec_dict: dict) -> None:
    """One shard's process loop: build the replica, then serve commands.

    Spawn-safe by construction: everything the worker needs arrives as
    picklable data (a registry hierarchy name or a plain-data hierarchy
    instance, and the shard's ``AlgorithmSpec`` as a dict) and the replica
    is built inside the worker.  Replies are ``("ok", payload)`` or
    ``("error", traceback_text)``; the parent re-raises the latter.

    Beyond the update/snapshot/close protocol the worker serves the
    supervision commands: ``checkpoint`` ships its runtime state to the
    parent, ``restore`` applies such a state after a respawn, and ``delay``
    sleeps before acknowledging (the fault-injection hook for slow/hung
    IPC).
    """
    from repro.api.registry import build_algorithm, make_hierarchy

    try:
        hierarchy = (
            make_hierarchy(hierarchy_payload)
            if isinstance(hierarchy_payload, str)
            else hierarchy_payload
        )
        algorithm = build_algorithm(AlgorithmSpec.from_dict(spec_dict), hierarchy)
        conn.send(("ok", None))
    except Exception:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            if command == "update_batch":
                algorithm.update_batch(message[1], message[2])
                conn.send(("ok", None))
            elif command == "update":
                algorithm.update(message[1], message[2])
                conn.send(("ok", None))
            elif command == "snapshot":
                conn.send(("ok", (algorithm.total, algorithm._counters)))
            elif command == "checkpoint":
                conn.send(("ok", capture_runtime_state(algorithm)))
            elif command == "restore":
                apply_runtime_state(algorithm, message[1])
                conn.send(("ok", None))
            elif command == "delay":
                time.sleep(message[1])
                conn.send(("ok", None))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown shard command {command!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# --------------------------------------------------------------------------- #
# the supervisor
# --------------------------------------------------------------------------- #


class ShardSupervisor:
    """Owns the shard worker pool: spawning, IPC, failure handling, shutdown.

    Args:
        shard_specs: one :class:`~repro.api.specs.AlgorithmSpec` per shard
            (own seed, divided memory budget).
        hierarchy_payload: registry name or picklable hierarchy instance,
            handed to every worker.
        policy: the :class:`SupervisorPolicy` in force.
        start_method: multiprocessing start method (default ``"spawn"``).
        fault_plan: optional :class:`~repro.core.faults.FaultPlan` whose
            ``kill``/``delay`` events fire at :meth:`begin_batch`.
    """

    def __init__(
        self,
        shard_specs: Sequence[AlgorithmSpec],
        hierarchy_payload,
        policy: Optional[SupervisorPolicy] = None,
        *,
        start_method: str = "spawn",
        fault_plan=None,
    ) -> None:
        self._specs = list(shard_specs)
        self._hierarchy_payload = hierarchy_payload
        self._policy = policy or SupervisorPolicy()
        self._context = multiprocessing.get_context(start_method)
        self._fault_plan = fault_plan
        count = len(self._specs)
        self._workers: List[Optional[Tuple[Any, Any]]] = [None] * count
        #: Per-shard journal of (message, weight) dispatched since the last
        #: supervision checkpoint (recovering policies only).
        self._journals: List[List[Tuple[tuple, int]]] = [[] for _ in range(count)]
        #: Per-shard last supervision checkpoint (capture_runtime_state dict).
        self._recovery: List[Optional[dict]] = [None] * count
        self._losses: Dict[int, ShardLoss] = {}
        self._dead: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Spawn every worker and wait for its build acknowledgement."""
        for shard in range(len(self._specs)):
            self._spawn(shard)
        startup = max(self._policy.timeout, _STARTUP_TIMEOUT_FLOOR)
        for shard in range(len(self._specs)):
            self._await_ok(shard, timeout=startup)

    def _spawn(self, shard: int) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker,
            args=(child_conn, self._hierarchy_payload, self._specs[shard].to_dict()),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers[shard] = (process, parent_conn)

    def close(self, raise_errors: bool = True) -> None:
        """Shut the pool down, guaranteeing no orphaned worker survives.

        Every worker gets a close handshake bounded by the IPC timeout, then
        an unconditional join/terminate/kill escalation.  Close-time
        failures of shards not already reported (a worker that died without
        the engine noticing, or errors during the handshake) are collected
        and raised as one summarizing error naming each shard and exitcode -
        pass ``raise_errors=False`` (the ``__del__``/unwind path) to swallow
        them after cleanup.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        failures: List[Exception] = []
        for shard, entry in enumerate(self._workers):
            if entry is None:
                continue
            process, conn = entry
            if shard not in self._dead:
                try:
                    conn.send(("close", None))
                    self._await_ok(shard)
                except (ShardFailure, AlgorithmError) as exc:
                    failures.append(exc)
                except OSError as exc:
                    process.join(timeout=1.0)
                    failures.append(
                        ShardFailure(
                            f"shard worker failed (shard {shard}, pid {process.pid}): "
                            f"close handshake broke: {exc}"
                            + (
                                f" (exitcode {process.exitcode})"
                                if process.exitcode is not None
                                else ""
                            ),
                            shard=shard,
                            exitcode=process.exitcode,
                        )
                    )
            try:
                conn.close()
            except OSError:
                pass
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=2.0)
        self._workers = [None] * len(self._specs)
        if failures and raise_errors:
            if len(failures) == 1:
                raise failures[0]
            summary = "; ".join(str(failure) for failure in failures)
            raise AlgorithmError(
                f"{len(failures)} shard workers failed during close: {summary}"
            )

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # IPC primitives: poll-based waits with liveness
    # ------------------------------------------------------------------ #

    def _await_ok(self, shard: int, timeout: Optional[float] = None):
        """Wait for one reply with a deadline and liveness checks.

        Raises :class:`ShardFailure` (naming shard, pid and exitcode) when
        the worker dies or the deadline passes, and plain
        :class:`AlgorithmError` when the (live) worker reports an error.
        """
        process, conn = self._workers[shard]
        budget = self._policy.timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            try:
                ready = conn.poll(self._policy.poll_interval)
            except (EOFError, OSError):
                raise self._death(shard, "its pipe closed before replying") from None
            if ready:
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    raise self._death(shard, "died before replying") from None
                break
            if not process.is_alive():
                # One grace poll: the reply may have been in flight when the
                # worker exited.
                try:
                    if conn.poll(0.2):
                        status, payload = conn.recv()
                        break
                except (EOFError, OSError):
                    pass
                raise self._death(shard, "died before replying")
            if time.monotonic() >= deadline:
                raise ShardFailure(
                    f"shard worker failed (shard {shard}, pid {process.pid}): "
                    f"no reply within {budget:.1f}s (worker still alive - hung pipe?)",
                    shard=shard,
                    exitcode=None,
                )
        if status != "ok":
            raise AlgorithmError(
                f"shard worker failed (shard {shard}, pid {process.pid}):\n{payload}"
            )
        return payload

    def _death(self, shard: int, why: str) -> ShardFailure:
        """Build the ShardFailure describing a dead worker (joins it first)."""
        process, _ = self._workers[shard]
        process.join(timeout=1.0)
        exitcode = process.exitcode
        suffix = f" (exitcode {exitcode})" if exitcode is not None else ""
        return ShardFailure(
            f"shard worker failed (shard {shard}, pid {process.pid}): {why}{suffix}",
            shard=shard,
            exitcode=exitcode,
        )

    def _send_raw(self, shard: int, message: tuple) -> None:
        entry = self._workers[shard]
        if entry is None:
            raise ShardFailure(
                f"shard worker failed (shard {shard}): no live worker", shard=shard
            )
        _, conn = entry
        try:
            conn.send(message)
        except OSError:
            raise self._death(shard, "its pipe broke during send") from None

    def _request(self, shard: int, message: tuple):
        """Send one command and await its ack, retrying once through recovery.

        Returns ``None`` when the shard ends up degraded instead of
        recovered (the caller falls back to its checkpointed state).
        """
        try:
            self._send_raw(shard, message)
            return self._await_ok(shard)
        except ShardFailure as failure:
            self._handle_failure(shard, failure, at_batch=None)
            if shard in self._dead:
                return None
            self._send_raw(shard, message)
            return self._await_ok(shard)

    # ------------------------------------------------------------------ #
    # batch dispatch
    # ------------------------------------------------------------------ #

    def begin_batch(self, batch_index: int) -> None:
        """Fire the fault plan's scheduled kills/delays before dispatching."""
        if self._fault_plan is None:
            return
        for shard in self._fault_plan.kills_at(batch_index):
            self._kill_worker(shard)
        for shard, seconds in self._fault_plan.delays_at(batch_index):
            if shard in self._dead or self._workers[shard] is None:
                continue
            try:
                self._send_raw(shard, ("delay", float(seconds)))
                self._await_ok(shard)
            except ShardFailure as failure:
                self._handle_failure(shard, failure, at_batch=batch_index)

    def _kill_worker(self, shard: int) -> None:
        """SIGKILL a worker (fault injection); death is *discovered* later."""
        entry = self._workers[shard]
        if entry is None or shard in self._dead:
            return
        process, _ = entry
        if process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)

    def send_update(self, shard: int, message: tuple, weight: int, at_batch: int) -> bool:
        """Dispatch one update command; ``True`` when an ack is now pending.

        ``False`` means no ack will arrive: the shard is degraded-dead (the
        weight is added to its recorded loss) or the dispatch failed and
        restart recovery already applied the message via journal replay.
        """
        if shard in self._dead:
            self._record_additional_loss(shard, weight)
            return False
        if self._policy.recovers:
            self._journals[shard].append((message, weight))
        _, conn = self._workers[shard]
        try:
            conn.send(message)
            return True
        except OSError:
            failure = self._death(shard, "its pipe broke during dispatch")
            self._handle_failure(shard, failure, at_batch=at_batch)
            return False

    def collect_acks(self, shards: Sequence[int], at_batch: int) -> None:
        """Await one ack per listed shard, draining every pipe before raising.

        Draining first keeps the request/reply protocol aligned even when an
        early shard fails: a stale ack never bleeds into the next command.
        Deaths and hangs go through the supervisor policy; worker-*reported*
        errors (worker alive, data-dependent failure) are re-raised as plain
        :class:`AlgorithmError` after the drain.
        """
        errors: List[Exception] = []
        for shard in shards:
            try:
                self._await_ok(shard)
            except ShardFailure as failure:
                try:
                    self._handle_failure(shard, failure, at_batch=at_batch)
                except ShardFailure as fatal:
                    errors.append(fatal)
            except AlgorithmError as exc:
                if self._policy.recovers and self._journals[shard]:
                    # The message is poison (the worker rejected it); keep it
                    # out of the replay journal so recovery is not poisoned
                    # with it too.
                    self._journals[shard].pop()
                errors.append(exc)
        if errors:
            raise errors[0]

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #

    def _handle_failure(self, shard: int, failure: ShardFailure, *, at_batch: Optional[int]) -> None:
        """Apply the policy to a detected worker death/hang."""
        self._reap(shard)
        if self._policy.policy == "restart":
            try:
                self._recover(shard)
            except Exception as exc:
                self._dead.add(shard)
                self._workers[shard] = None
                raise ShardFailure(
                    f"shard worker failed (shard {shard}): restart recovery failed: {exc}",
                    shard=shard,
                    exitcode=failure.exitcode,
                ) from exc
        elif self._policy.policy == "degrade":
            self._degrade(shard, failure, at_batch)
        else:
            self._dead.add(shard)
            raise failure

    def _reap(self, shard: int) -> None:
        """Make sure a failed worker's process is gone and its pipe closed."""
        entry = self._workers[shard]
        if entry is None:
            return
        process, conn = entry
        try:
            conn.close()
        except OSError:
            pass
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - defensive
            process.kill()
            process.join(timeout=2.0)
        process.join(timeout=1.0)

    def _recover(self, shard: int) -> None:
        """Respawn a dead shard: last checkpoint + journaled delta, bit-exact.

        The checkpoint restores the exact counter and RNG state at the last
        supervision snapshot; the journal then replays every update
        dispatched since - including the one in flight when the worker died
        - so the recovered worker is indistinguishable from one that never
        crashed.
        """
        self._spawn(shard)
        self._await_ok(shard, timeout=max(self._policy.timeout, _STARTUP_TIMEOUT_FLOOR))
        if self._recovery[shard] is not None:
            self._send_raw(shard, ("restore", self._recovery[shard]))
            self._await_ok(shard)
        for message, _ in self._journals[shard]:
            self._send_raw(shard, message)
            self._await_ok(shard)

    def _degrade(self, shard: int, failure: ShardFailure, at_batch: Optional[int]) -> None:
        """Abandon a shard: record its unaccounted weight, keep its checkpoint."""
        lost = sum(weight for _, weight in self._journals[shard])
        self._journals[shard] = []
        self._dead.add(shard)
        self._workers[shard] = None
        self._losses[shard] = ShardLoss(
            shard=shard,
            lost_packets=lost,
            exitcode=failure.exitcode,
            at_batch=at_batch,
            reason=str(failure),
        )

    def _record_additional_loss(self, shard: int, weight: int) -> None:
        loss = self._losses.get(shard)
        if loss is None:  # pragma: no cover - defensive
            self._losses[shard] = ShardLoss(shard, weight, None, None, "shard already lost")
        else:
            loss.lost_packets += weight

    # ------------------------------------------------------------------ #
    # supervision checkpoints
    # ------------------------------------------------------------------ #

    def maybe_checkpoint(self, batch_index: int) -> None:
        """Take the periodic recovery snapshot when the batch index is due."""
        if not self._policy.recovers:
            return
        if (batch_index + 1) % self._policy.checkpoint_every:
            return
        self.checkpoint_now(at_batch=batch_index)

    def checkpoint_now(self, at_batch: Optional[int] = None) -> None:
        """Snapshot every live shard's runtime state and clear the journals."""
        for shard in range(len(self._specs)):
            if shard in self._dead:
                continue
            try:
                self._send_raw(shard, ("checkpoint", None))
                state = self._await_ok(shard)
            except ShardFailure as failure:
                self._handle_failure(shard, failure, at_batch=at_batch)
                if shard in self._dead:
                    continue
                self._send_raw(shard, ("checkpoint", None))
                state = self._await_ok(shard)
            self._recovery[shard] = state
            self._journals[shard] = []

    def runtime_states(self) -> List[dict]:
        """One full runtime snapshot per shard (the engine-checkpoint path)."""
        if self._dead:
            raise CheckpointError(
                f"cannot checkpoint a degraded engine: shards {sorted(self._dead)} already lost"
            )
        states = []
        for shard in range(len(self._specs)):
            state = self._request(shard, ("checkpoint", None))
            if state is None:
                raise CheckpointError(
                    f"shard {shard} was lost while snapshotting the engine"
                )
            states.append(state)
        return states

    def restore_states(self, states: Sequence[dict]) -> None:
        """Push one runtime snapshot into every worker and rebase recovery on it."""
        if self._dead:
            raise CheckpointError(
                f"cannot restore into a degraded engine: shards {sorted(self._dead)} already lost"
            )
        if len(states) != len(self._specs):
            raise CheckpointError(
                f"checkpoint holds {len(states)} shard states, engine has {len(self._specs)}"
            )
        for shard, state in enumerate(states):
            self._send_raw(shard, ("restore", state))
            self._await_ok(shard)
            if self._policy.recovers:
                self._recovery[shard] = copy.deepcopy(state)
                self._journals[shard] = []

    # ------------------------------------------------------------------ #
    # merge-time snapshots and reporting
    # ------------------------------------------------------------------ #

    def merge_states(self) -> List[Tuple[int, list]]:
        """``(total, counters)`` per shard for the output-time reduction.

        Live shards answer with a fresh snapshot; lost shards contribute
        their last supervision checkpoint (their preserved partial state) or
        nothing if they died before the first checkpoint.
        """
        states: List[Tuple[int, list]] = []
        for shard in range(len(self._specs)):
            if shard not in self._dead:
                snapshot = self._request(shard, ("snapshot", None))
                if snapshot is not None:
                    states.append(snapshot)
                    continue
            checkpoint = self._recovery[shard]
            if checkpoint is not None:
                attrs = checkpoint.get("attrs", {})
                counters = attrs.get("_counters")
                if counters is not None:
                    states.append((attrs.get("_total", 0), copy.deepcopy(counters)))
        return states

    def losses(self) -> List[ShardLoss]:
        """The :class:`ShardLoss` report of every abandoned shard."""
        return [self._losses[shard] for shard in sorted(self._losses)]

    def lost_packets(self) -> int:
        """Total weight no surviving or checkpointed state accounts for."""
        return sum(loss.lost_packets for loss in self._losses.values())

    def is_failed(self, shard: int) -> bool:
        return shard in self._dead

    @property
    def failed_shards(self) -> List[int]:
        return sorted(self._dead)

    @property
    def policy(self) -> SupervisorPolicy:
        return self._policy

    def worker_pids(self) -> Dict[int, int]:
        """Pid of every live worker (tests use this to aim hostile signals)."""
        return {
            shard: entry[0].pid
            for shard, entry in enumerate(self._workers)
            if entry is not None and entry[0].is_alive()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSupervisor({len(self._specs)} shards, policy={self._policy.policy!r}, "
            f"failed={sorted(self._dead)})"
        )
