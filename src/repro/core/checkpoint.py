"""Checkpoint/restore of lattice-algorithm state: atomic files, runtime snapshots.

Two layers live here.  The *state* layer turns a live algorithm into plain
picklable data and back: :func:`capture_runtime_state` copies the runtime
attributes a lattice algorithm accumulates (counter summaries, totals,
sampling bookkeeping) plus the exact position of its RNG streams, and
:func:`apply_runtime_state` pushes such a snapshot into a freshly *built*
instance of the same class - algorithms are deliberately not pickled whole
(they hold compiled generalizer closures), so a restore always rebuilds from
the spec first and then replays the state.  Because the RNG streams are
restored bit-exactly, a restored instance continues the stream with the very
draws the snapshotted instance would have made - the property the
restart-recovery and resume parity tests pin.

The *file* layer is the durability story: :func:`save_checkpoint` writes a
versioned, checksummed container (magic ``RCKP``, format version, payload
length, SHA-256 digest, pickled payload) to a temporary sibling and
``os.replace``\\ s it into place, so readers only ever see the old complete
checkpoint or the new complete checkpoint - never a torn write.
:func:`load_checkpoint` re-verifies the whole chain and raises
:class:`~repro.exceptions.CheckpointError` on any mismatch (bad magic,
unknown version, truncation, checksum failure) instead of unpickling
garbage.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import random
import struct
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

from repro.exceptions import CheckpointError

#: Container magic / format version of the checkpoint file layer.
CHECKPOINT_MAGIC = b"RCKP"
CHECKPOINT_VERSION = 1

#: Header layout: magic, format version, payload length, SHA-256 of payload.
_HEADER = struct.Struct("<4sIQ32s")

#: Runtime attributes captured from a lattice algorithm, in addition to the
#: RNG streams.  Only the attributes an instance actually has are captured,
#: so the one whitelist covers RHHH (all but ``_sampled``), MST (totals and
#: counters only) and SampledMST (all but the RHHH bookkeeping).
#: ``_versions`` is the per-node update clock of the incremental query
#: engine; capturing it keeps a restored instance's version stamps in step
#: with its restored counters.
#: Algorithms with runtime state beyond this list declare it in a class-level
#: ``CHECKPOINT_EXTRA_ATTRS`` tuple (see :func:`_state_attr_names`); the
#: ``checkpoint-drift`` reprolint rule fails the build when a mutated
#: attribute is on neither list.
_STATE_ATTRS = ("_total", "_counters", "_ignored", "_update_calls", "_sampled", "_versions")


def _state_attr_names(algorithm: Any) -> Tuple[str, ...]:
    """The whitelist plus every ``CHECKPOINT_EXTRA_ATTRS`` declaration.

    Extra attrs are collected per class across the MRO (base-first), so a
    subclass extends - never shadows - what its ancestors declared.
    """
    names = list(_STATE_ATTRS)
    for klass in reversed(type(algorithm).__mro__):
        for name in klass.__dict__.get("CHECKPOINT_EXTRA_ATTRS", ()):
            if name not in names:
                names.append(name)
    return tuple(names)


# --------------------------------------------------------------------------- #
# runtime-state snapshots
# --------------------------------------------------------------------------- #


def capture_runtime_state(algorithm: Any, *, copy_state: bool = True) -> Dict[str, Any]:
    """Snapshot a lattice algorithm's runtime state as plain picklable data.

    By default the snapshot holds deep copies, so it stays valid while the
    live instance keeps processing the stream.  ``copy_state=False`` skips
    the copies for snapshots that are serialized immediately (pickling never
    mutates) - roughly halving the checkpoint cost - but such a snapshot
    aliases live state and must not be kept across further updates.
    """
    state: Dict[str, Any] = {"class": type(algorithm).__name__, "attrs": {}, "rng": {}}
    for name in _state_attr_names(algorithm):
        if hasattr(algorithm, name):
            value = getattr(algorithm, name)
            state["attrs"][name] = copy.deepcopy(value) if copy_state else value
    rng = getattr(algorithm, "_rng", None)
    if isinstance(rng, random.Random):
        state["rng"]["_rng"] = rng.getstate()
    batch_rng = getattr(algorithm, "_batch_rng", None)
    if isinstance(batch_rng, np.random.Generator):
        state["rng"]["_batch_rng"] = batch_rng.bit_generator.state
    return state


def apply_runtime_state(algorithm: Any, state: Dict[str, Any]) -> None:
    """Push a :func:`capture_runtime_state` snapshot into a rebuilt instance.

    ``algorithm`` must be a freshly built instance of the class the snapshot
    was taken from (same spec/hierarchy); after the call it is
    indistinguishable from the snapshotted instance, RNG position included.
    """
    expected = state.get("class")
    if expected != type(algorithm).__name__:
        raise CheckpointError(
            f"checkpoint holds {expected!r} state, cannot apply to {type(algorithm).__name__!r}"
        )
    for name, value in state.get("attrs", {}).items():
        if not hasattr(algorithm, name):
            raise CheckpointError(f"checkpoint attribute {name!r} does not exist on {expected}")
        setattr(algorithm, name, copy.deepcopy(value))
    for name, value in state.get("rng", {}).items():
        rng = getattr(algorithm, name, None)
        if isinstance(rng, random.Random):
            rng.setstate(value)
        elif isinstance(rng, np.random.Generator):
            rng.bit_generator.state = value
        else:
            raise CheckpointError(f"checkpoint RNG stream {name!r} has no counterpart on {expected}")
    # Counter state was replaced wholesale: any warm output cache describes a
    # different timeline (restored version stamps could coincidentally match
    # its snapshots), so the next query must recompute from scratch.
    cache = getattr(algorithm, "_output_cache", None)
    if cache is not None:
        cache.invalidate()


def snapshot_algorithm(algorithm: Any, *, copy_state: bool = True) -> Dict[str, Any]:
    """Snapshot any lattice algorithm or engine.

    Engines that manage their own distributed state (``ShardedHHH``) expose
    ``snapshot_state``/``restore_state``; plain algorithms go through the
    attribute capture.  The returned dict is what a Session checkpoint
    embeds.  ``copy_state=False`` has :func:`capture_runtime_state`'s
    serialize-immediately semantics (engine snapshots always copy - their
    state crosses a process boundary anyway).
    """
    if hasattr(algorithm, "snapshot_state"):
        return {"kind": "engine", "state": algorithm.snapshot_state()}
    return {"kind": "algorithm", "state": capture_runtime_state(algorithm, copy_state=copy_state)}


def restore_algorithm(algorithm: Any, snapshot: Dict[str, Any]) -> None:
    """Apply a :func:`snapshot_algorithm` snapshot to a rebuilt algorithm/engine."""
    kind = snapshot.get("kind")
    if kind == "engine":
        if not hasattr(algorithm, "restore_state"):
            raise CheckpointError(
                f"checkpoint holds engine state but {type(algorithm).__name__} is not an engine"
            )
        algorithm.restore_state(snapshot["state"])
    elif kind == "algorithm":
        apply_runtime_state(algorithm, snapshot["state"])
    else:
        raise CheckpointError(f"unknown checkpoint snapshot kind {kind!r}")


# --------------------------------------------------------------------------- #
# the checkpoint file container
# --------------------------------------------------------------------------- #


def pack_payload(payload: Dict[str, Any], *, label: str = "checkpoint") -> bytes:
    """Frame ``payload`` as the versioned, checksummed ``RCKP`` container.

    The in-memory half of the durability container: pickled payload behind a
    header carrying the magic, format version, payload length and SHA-256
    digest.  :func:`save_checkpoint` writes these bytes to disk; the
    distributed wire layer (:mod:`repro.distrib.wire`) ships them over a
    transport - one integrity format for both.
    """
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"{label} payload is not picklable: {exc}") from exc
    header = _HEADER.pack(
        CHECKPOINT_MAGIC, CHECKPOINT_VERSION, len(body), hashlib.sha256(body).digest()
    )
    return header + body


def unpack_payload(raw: bytes, *, label: str = "checkpoint") -> Dict[str, Any]:
    """Verify and unpickle a :func:`pack_payload` container.

    Raises:
        CheckpointError: the bytes are truncated, have the wrong magic or
            version, or the payload fails the checksum.  ``label`` names the
            artefact (a checkpoint path, a wire message) in the error text.
    """
    if len(raw) < _HEADER.size:
        raise CheckpointError(f"{label} is truncated (no complete header)")
    magic, version, length, digest = _HEADER.unpack_from(raw)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{label} has bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{label} has unsupported format version {version} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    body = raw[_HEADER.size :]
    if len(body) != length:
        raise CheckpointError(
            f"{label} is truncated: header promises {length} payload bytes, "
            f"found {len(body)}"
        )
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointError(f"{label} failed its SHA-256 integrity check")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(f"{label} payload does not unpickle: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"{label} payload is {type(payload).__name__}, expected a dict"
        )
    return payload


def save_checkpoint(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Atomically write ``payload`` as a checksummed checkpoint file.

    The payload is pickled, framed with a ``RCKP`` header carrying the
    format version and a SHA-256 digest, written to ``<path>.tmp.<pid>`` and
    renamed into place, so a crash mid-write never destroys the previous
    checkpoint.  Returns the final path.
    """
    path = Path(path)
    framed = pack_payload(payload, label=f"checkpoint {path}")
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(framed)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    return path


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and verify a checkpoint file written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: the file is missing, truncated, has the wrong magic
            or version, or its payload fails the checksum.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return unpack_payload(raw, label=f"checkpoint {path}")
