"""Sharded parallel batch execution: hash-partitioned shards, mergeable counters.

The per-node grouping inside :meth:`repro.core.rhhh.RHHH.update_batch` is
embarrassingly parallel, and this module is the scale lever built on that
fact: a :class:`ShardedHHH` hash-partitions every key batch across ``N``
shard replicas of a lattice algorithm (RHHH, MST or SampledMST - anything
built from an :class:`~repro.api.specs.AlgorithmSpec` that keeps one
mergeable counter per lattice node), drives each replica's own vectorized
``update_batch`` over its sub-stream, and reduces the per-node counter
summaries with the :meth:`~repro.hh.base.FrequencyEstimator.merge` protocol
at output time.  This is the local-update/central-merge loop of the
federated-aggregation literature with per-shard counter summaries playing
the role of the local models.

Two execution modes share identical semantics:

* ``parallel=False`` runs the shard replicas in-process (deterministic,
  dependency-free - the reference the lockstep tests compare against);
* ``parallel=True`` gives each shard a dedicated worker process (spawn-safe:
  workers rebuild their replica from the pickled spec + hierarchy, so no
  live state crosses the fork boundary) and overlaps the per-shard batch
  work across cores.

Each *key* is routed to exactly one shard (multiplicative hashing on the
packed key), so at the fully-specified lattice node the shard summaries see
disjoint key sets and the reduction uses ``merge(..., disjoint=True)``: the
merged estimate over-counts a monitored key by at most its owning shard's
error bound.  At generalized nodes disjointness does *not* hold - two
packets of the same /24 aggregate can hash to different shards - so those
nodes reduce with the generic merge, whose estimates stay within the
*summed* per-shard error bounds (and the sketch merges are exactly the
single-pass tables everywhere).  Merged output is *not* bit-identical to an
unsharded run (the sampling draws differ and Space Saving truncates the
merged summary to capacity), which is why the property and statistical
suites in ``tests/core/test_shard.py`` and
``tests/eval/test_accuracy_regression.py`` pin the error-bound and
(epsilon, delta)-coverage guarantees instead.

Per-shard RNG streams are derived with ``numpy.random.SeedSequence.spawn``:
for a fixed ``(seed, shards)`` pair every run draws the same per-shard
seeds, while different shards get cryptographically independent streams (no
two workers ever replay the same coin flips).
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing
import traceback
from typing import Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.specs import AlgorithmSpec
from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.batch import coerce_key_array, coerce_weights
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hh.base import FrequencyEstimator
from repro.hierarchy.base import Hierarchy

_MASK64 = (1 << 64) - 1
#: Odd multiplicative-hash constants (golden-ratio and xxhash64 primes).
_GOLDEN_SRC = 0x9E3779B97F4A7C15
_GOLDEN_DST = 0xC2B2AE3D27D4EB4F
#: Keep the top 31 bits of the mixed word: the low bits of ``x * odd`` are a
#: permutation of ``x``'s low bits, the high bits are well mixed.
_MIX_SHIFT = 33


def spawn_shard_seeds(seed: Optional[int], shards: int) -> List[int]:
    """Derive one independent RNG seed per shard via ``SeedSequence.spawn``.

    Reproducible: a fixed ``(seed, shards)`` pair always yields the same
    seed list.  Independent: spawned children occupy disjoint entropy
    streams, so two shards never see identical draw sequences (the paired
    regression test feeds both seeds into RHHH and compares the node
    choices).  ``seed=None`` draws fresh OS entropy, matching the unseeded
    behaviour of the underlying algorithms.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    root = np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in root.spawn(shards)]


def per_shard_algorithm_spec(spec: AlgorithmSpec, seed: Optional[int], shards: int) -> AlgorithmSpec:
    """The spec one shard replica is built from: own seed, divided memory budget.

    A memory-budgeted auto counter (``CounterSpec(auto=True, memory_bytes=B)``)
    describes the *deployment's* budget; ``N`` shards each get ``B // N`` so
    the sharded run stays inside the same envelope.
    """
    counter = spec.counter
    if counter is not None and counter.auto and counter.memory_bytes is not None:
        counter = dataclasses.replace(
            counter, memory_bytes=max(1, counter.memory_bytes // shards)
        )
    return dataclasses.replace(spec, seed=seed, counter=counter)


# --------------------------------------------------------------------------- #
# hash partitioning
# --------------------------------------------------------------------------- #


def shard_of_key(key: Hashable, shards: int) -> int:
    """Shard owning ``key`` - the scalar twin of :func:`shard_assignments`.

    Integer and integer-pair keys use the same multiplicative mix as the
    vectorized path (modulo ``2**64``), so a key is routed identically
    whether it arrives through ``update`` or inside a numpy batch; other key
    types fall back to Python ``hash`` (deterministic per process family
    only for types unaffected by hash randomization, which covers the ints
    and int tuples the hierarchies emit).
    """
    if isinstance(key, tuple) and len(key) == 2:
        src, dst = key
        if isinstance(src, (int, np.integer)) and isinstance(dst, (int, np.integer)):
            mixed = ((int(src) * _GOLDEN_SRC) & _MASK64) ^ ((int(dst) * _GOLDEN_DST) & _MASK64)
            return (mixed >> _MIX_SHIFT) % shards
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        return (((int(key) * _GOLDEN_SRC) & _MASK64) >> _MIX_SHIFT) % shards
    return hash(key) % shards


def shard_assignments(keys: Sequence, shards: int) -> Optional[np.ndarray]:
    """Per-packet shard ids for a key batch, or ``None`` for non-numeric keys.

    Vectorized multiplicative hashing over the batch: 1-D integer arrays mix
    each key, ``(n, 2)`` arrays mix source and destination with different
    odd constants.  Identical keys always land in the same shard, which is
    what makes the shard summaries key-disjoint and the ``disjoint=True``
    merge reduction valid.
    """
    arr = coerce_key_array(keys, len(keys))
    if arr is None or arr.dtype.kind not in "iu":
        return None
    if arr.ndim == 1:
        mixed = arr.astype(np.uint64) * np.uint64(_GOLDEN_SRC)
    elif arr.ndim == 2 and arr.shape[1] == 2:
        mixed = (arr[:, 0].astype(np.uint64) * np.uint64(_GOLDEN_SRC)) ^ (
            arr[:, 1].astype(np.uint64) * np.uint64(_GOLDEN_DST)
        )
    else:
        return None
    return ((mixed >> np.uint64(_MIX_SHIFT)) % np.uint64(shards)).astype(np.int64)


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #


def _shard_worker(conn, hierarchy_payload, spec_dict: dict) -> None:
    """One shard's process loop: build the replica, then serve commands.

    Spawn-safe by construction: everything the worker needs arrives as
    picklable data (a registry hierarchy name or a plain-data hierarchy
    instance, and the shard's ``AlgorithmSpec`` as a dict) and the replica
    is built inside the worker.  Replies are ``("ok", payload)`` or
    ``("error", traceback_text)``; the parent re-raises the latter.
    """
    from repro.api.registry import build_algorithm, make_hierarchy

    try:
        hierarchy = (
            make_hierarchy(hierarchy_payload)
            if isinstance(hierarchy_payload, str)
            else hierarchy_payload
        )
        algorithm = build_algorithm(AlgorithmSpec.from_dict(spec_dict), hierarchy)
        conn.send(("ok", None))
    except Exception:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        try:
            if command == "update_batch":
                algorithm.update_batch(message[1], message[2])
                conn.send(("ok", None))
            elif command == "update":
                algorithm.update(message[1], message[2])
                conn.send(("ok", None))
            elif command == "snapshot":
                conn.send(("ok", (algorithm.total, algorithm._counters)))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown shard command {command!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# --------------------------------------------------------------------------- #
# the sharded engine
# --------------------------------------------------------------------------- #


class ShardedHHH(HHHAlgorithm):
    """Hash-partitioned shard replicas of a lattice HHH algorithm.

    Args:
        algorithm: the :class:`~repro.api.specs.AlgorithmSpec` each shard
            replica is built from (or a bare registry name).  The spec's
            ``seed`` is the *root* seed; per-shard seeds are spawned from it.
        hierarchy: the hierarchical domain - a registry name (preferred for
            process workers: each worker rebuilds it by name) or a
            :class:`~repro.hierarchy.base.Hierarchy` instance (pickled to
            the workers; the builtin hierarchies are plain data).
        shards: number of shard replicas (>= 1).
        parallel: ``True`` gives each shard a worker process; ``False`` runs
            the replicas in-process (same results, no processes - the
            lockstep reference and the sensible choice for tiny runs).
        start_method: multiprocessing start method for the worker pool
            (default ``"spawn"``, the method that works on every platform
            and never inherits live state).
    """

    name = "sharded"

    def __init__(
        self,
        algorithm: Union[AlgorithmSpec, str] = "rhhh",
        hierarchy: Union[Hierarchy, str] = "2d-bytes",
        shards: int = 2,
        *,
        parallel: bool = True,
        start_method: str = "spawn",
    ) -> None:
        from repro.api.registry import build_algorithm, make_hierarchy

        spec = AlgorithmSpec(name=algorithm) if isinstance(algorithm, str) else algorithm
        if not isinstance(spec, AlgorithmSpec):
            raise ConfigurationError(
                f"algorithm must be an AlgorithmSpec or name, got {type(algorithm).__name__}"
            )
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ConfigurationError(f"shards must be a positive integer, got {shards!r}")
        hierarchy_obj = make_hierarchy(hierarchy) if isinstance(hierarchy, str) else hierarchy
        super().__init__(hierarchy_obj)
        self._spec = spec
        self._shards = shards
        self._parallel = bool(parallel)
        self._start_method = start_method
        self._seeds = spawn_shard_seeds(spec.seed, shards)
        self._shard_specs = [
            per_shard_algorithm_spec(spec, seed, shards) for seed in self._seeds
        ]
        # The merged-output delegate: a replica-shaped instance (per-shard
        # counter sizing, so capacities line up with the shard summaries)
        # whose counters/total are replaced by the merged state at output
        # time.  Building it up front also fail-fasts on unshardable specs.
        self._template = build_algorithm(
            per_shard_algorithm_spec(spec, spec.seed, shards), hierarchy_obj
        )
        if not hasattr(self._template, "_counters"):
            raise ConfigurationError(
                f"algorithm {spec.name!r} keeps no per-node counter lattice; "
                "sharded execution supports the lattice algorithms (rhhh, mst, sampled_mst)"
            )
        probe = self._template._counters[0]
        if type(probe).merge is FrequencyEstimator.merge:
            raise ConfigurationError(
                f"counter backend {type(probe).__name__} does not implement merge(); "
                "pick a mergeable backend (space_saving, array_space_saving, "
                "misra_gries, count_min, count_sketch)"
            )
        # Hash partitioning is key-disjoint only where the counter keys ARE
        # the routed keys: the fully-specified (level-0) lattice node.
        # Generalized nodes aggregate keys from many shards and must take
        # the generic summed-bound merge.
        self._node_disjoint = [
            hierarchy_obj.node_level(node) == 0 for node in range(hierarchy_obj.size)
        ]
        self._replicas: List[HHHAlgorithm] = []
        self._workers: List[Tuple] = []
        self._closed = False
        if self._parallel:
            self._start_workers(hierarchy if isinstance(hierarchy, str) else hierarchy_obj)
        else:
            self._replicas = [
                build_algorithm(shard_spec, hierarchy_obj) for shard_spec in self._shard_specs
            ]

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #

    def _start_workers(self, hierarchy_payload) -> None:
        context = multiprocessing.get_context(self._start_method)
        for shard_spec in self._shard_specs:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker,
                args=(child_conn, hierarchy_payload, shard_spec.to_dict()),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))
        for _, conn in self._workers:
            self._expect_ok(conn)

    @staticmethod
    def _expect_ok(conn):
        try:
            status, payload = conn.recv()
        except EOFError:
            raise AlgorithmError("a shard worker died before replying") from None
        if status != "ok":
            raise AlgorithmError(f"shard worker failed:\n{payload}")
        return payload

    def close(self) -> None:
        """Shut the worker pool down (idempotent; serial mode is a no-op)."""
        if self._closed:
            return
        self._closed = True
        for process, conn in self._workers:
            try:
                conn.send(("close", None))
                self._expect_ok(conn)
            except (OSError, EOFError, AlgorithmError):
                pass
            finally:
                conn.close()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._workers = []

    def __enter__(self) -> "ShardedHHH":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # stream processing
    # ------------------------------------------------------------------ #

    def update(self, key: Hashable, weight: int = 1) -> None:
        """Route one packet to the shard owning its key."""
        shard = shard_of_key(key, self._shards)
        self._total += weight
        if self._parallel:
            _, conn = self._workers[shard]
            conn.send(("update", key, weight))
            self._expect_ok(conn)
        else:
            self._replicas[shard].update(key, weight)

    def update_batch(
        self, keys: Sequence[Hashable], weights: Optional[Sequence[int]] = None
    ) -> None:
        """Hash-partition the batch and drive every shard's own ``update_batch``.

        In parallel mode the sub-batches are dispatched to all workers before
        any acknowledgement is collected, so the per-shard vectorized engines
        run concurrently; serial mode applies them in shard order.  Either
        way each shard sees exactly the sub-stream of keys it owns, in stream
        order - the property the lockstep suite pins.
        """
        n = len(keys)
        if n == 0:
            return
        weights_arr, total_weight = coerce_weights(weights, n)
        self._total += total_weight
        parts = self._partition(keys, weights_arr, n)
        if self._parallel:
            touched = []
            for shard, (sub_keys, sub_weights) in enumerate(parts):
                if len(sub_keys) == 0:
                    continue
                _, conn = self._workers[shard]
                conn.send(("update_batch", sub_keys, sub_weights))
                touched.append(conn)
            for conn in touched:
                self._expect_ok(conn)
        else:
            for shard, (sub_keys, sub_weights) in enumerate(parts):
                if len(sub_keys):
                    self._replicas[shard].update_batch(sub_keys, sub_weights)

    def _partition(
        self, keys: Sequence, weights_arr: Optional[np.ndarray], n: int
    ) -> List[Tuple[Sequence, Optional[np.ndarray]]]:
        """Split a batch into per-shard ``(keys, weights)`` sub-batches."""
        if self._shards == 1:
            return [(keys if isinstance(keys, np.ndarray) else list(keys), weights_arr)]
        assignments = shard_assignments(keys, self._shards)
        if assignments is None:
            key_list = list(self._iter_batch_keys(keys))
            buckets: List[List] = [[] for _ in range(self._shards)]
            weight_buckets: List[List[int]] = [[] for _ in range(self._shards)]
            weight_list = weights_arr.tolist() if weights_arr is not None else None
            for i, key in enumerate(key_list):
                shard = shard_of_key(key, self._shards)
                buckets[shard].append(key)
                if weight_list is not None:
                    weight_buckets[shard].append(weight_list[i])
            return [
                (
                    bucket,
                    np.asarray(weight_buckets[shard], dtype=np.int64)
                    if weights_arr is not None
                    else None,
                )
                for shard, bucket in enumerate(buckets)
            ]
        keys_arr = coerce_key_array(keys, n)
        parts: List[Tuple[Sequence, Optional[np.ndarray]]] = []
        for shard in range(self._shards):
            picked = np.flatnonzero(assignments == shard)
            parts.append(
                (
                    keys_arr[picked],
                    weights_arr[picked] if weights_arr is not None else None,
                )
            )
        return parts

    # ------------------------------------------------------------------ #
    # the merge reduction and queries
    # ------------------------------------------------------------------ #

    def _shard_states(self) -> List[Tuple[int, List]]:
        """Collect ``(total, counters)`` from every shard.

        Parallel snapshots arrive as fresh pickled copies; the serial path
        deep-copies shard 0 (the merge target) and hands the rest over
        read-only - ``merge`` never mutates its argument.
        """
        if self._parallel:
            for _, conn in self._workers:
                conn.send(("snapshot", None))
            return [self._expect_ok(conn) for _, conn in self._workers]
        states = []
        for shard, replica in enumerate(self._replicas):
            counters = replica._counters
            if shard == 0:
                counters = copy.deepcopy(counters)
            states.append((replica.total, counters))
        return states

    def merged_counters(self) -> Tuple[List, int]:
        """Reduce the shard summaries into one per-node counter list.

        Returns ``(counters, total)``: the merge of every shard's per-node
        summaries (key-disjoint at the fully-specified node, generic
        summed-bound elsewhere) and the summed shard totals.
        """
        states = self._shard_states()
        merged = list(states[0][1])
        total = states[0][0]
        for shard_total, counters in states[1:]:
            total += shard_total
            for node, counter in enumerate(counters):
                merged[node].merge(counter, disjoint=self._node_disjoint[node])
        return merged, total

    def output(self, theta: float) -> HHHOutput:
        """Merge the shards and run the underlying algorithm's Output on the result.

        The delegate instance supplies the algorithm-specific scaling and
        sampling correction (``V`` and the ``2 Z sqrt(NV)`` term for RHHH,
        the plain lattice output for MST), computed against the *combined*
        stream length.
        """
        merged, total = self.merged_counters()
        self._template._counters = merged
        self._template._total = total
        return self._template.output(theta)

    def counters(self) -> int:
        if self._parallel:
            return self._shards * self._template.counters()
        return sum(replica.counters() for replica in self._replicas)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> int:
        """Number of shard replicas."""
        return self._shards

    @property
    def parallel(self) -> bool:
        """Whether shards run in worker processes."""
        return self._parallel

    @property
    def shard_seeds(self) -> List[int]:
        """The per-shard RNG seeds spawned from the root seed."""
        return list(self._seeds)

    @property
    def shard_specs(self) -> List[AlgorithmSpec]:
        """The per-shard algorithm specs (own seed, divided memory budget)."""
        return list(self._shard_specs)

    def shard_algorithm(self, shard: int) -> HHHAlgorithm:
        """The live replica of ``shard`` (serial mode only; for tests)."""
        if self._parallel:
            raise AlgorithmError("shard replicas live in worker processes when parallel=True")
        return self._replicas[shard]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "parallel" if self._parallel else "serial"
        return (
            f"ShardedHHH({self._spec.name!r}, shards={self._shards}, {mode}, "
            f"N={self._total})"
        )
