"""Sharded parallel batch execution: hash-partitioned shards, mergeable counters.

The per-node grouping inside :meth:`repro.core.rhhh.RHHH.update_batch` is
embarrassingly parallel, and this module is the scale lever built on that
fact: a :class:`ShardedHHH` hash-partitions every key batch across ``N``
shard replicas of a lattice algorithm (RHHH, MST or SampledMST - anything
built from an :class:`~repro.api.specs.AlgorithmSpec` that keeps one
mergeable counter per lattice node), drives each replica's own vectorized
``update_batch`` over its sub-stream, and reduces the per-node counter
summaries with the :meth:`~repro.hh.base.FrequencyEstimator.merge` protocol
at output time.  This is the local-update/central-merge loop of the
federated-aggregation literature with per-shard counter summaries playing
the role of the local models.

Two execution modes share identical semantics:

* ``parallel=False`` runs the shard replicas in-process (deterministic,
  dependency-free - the reference the lockstep tests compare against);
* ``parallel=True`` gives each shard a dedicated worker process (spawn-safe:
  workers rebuild their replica from the pickled spec + hierarchy, so no
  live state crosses the fork boundary) and overlaps the per-shard batch
  work across cores.

Parallel workers run under a :class:`~repro.core.supervise.ShardSupervisor`:
every wait is bounded by an IPC timeout with liveness checks, and the
supervisor's :class:`~repro.core.supervise.SupervisorPolicy` decides what a
worker death means - ``fail`` raises a typed
:class:`~repro.exceptions.ShardFailure` naming the shard and exitcode,
``restart`` respawns the shard from its last supervision checkpoint and
replays the journaled delta (bit-identical to a failure-free run), and
``degrade`` continues on the survivors, merging the lost shard's
checkpointed contribution and widening the output's error bounds by exactly
the unaccounted weight (reported via ``HHHOutput.failed_shards``).  The
whole engine state also snapshots/restores through
:meth:`ShardedHHH.snapshot_state`/:meth:`ShardedHHH.restore_state`, which is
what ``Session`` checkpointing builds on.

Each *key* is routed to exactly one shard (multiplicative hashing on the
packed key), so at the fully-specified lattice node the shard summaries see
disjoint key sets and the reduction uses ``merge(..., disjoint=True)``: the
merged estimate over-counts a monitored key by at most its owning shard's
error bound.  At generalized nodes disjointness does *not* hold - two
packets of the same /24 aggregate can hash to different shards - so those
nodes reduce with the generic merge, whose estimates stay within the
*summed* per-shard error bounds (and the sketch merges are exactly the
single-pass tables everywhere).  Merged output is *not* bit-identical to an
unsharded run (the sampling draws differ and Space Saving truncates the
merged summary to capacity), which is why the property and statistical
suites in ``tests/core/test_shard.py`` and
``tests/eval/test_accuracy_regression.py`` pin the error-bound and
(epsilon, delta)-coverage guarantees instead.

Per-shard RNG streams are derived with ``numpy.random.SeedSequence.spawn``:
for a fixed ``(seed, shards)`` pair every run draws the same per-shard
seeds, while different shards get cryptographically independent streams (no
two workers ever replay the same coin flips).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.specs import AlgorithmSpec
from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.batch import coerce_key_array, coerce_weights
from repro.core.checkpoint import apply_runtime_state, capture_runtime_state
from repro.core.output import OutputCache
from repro.core.supervise import ShardLoss, ShardSupervisor, SupervisorPolicy
from repro.exceptions import AlgorithmError, CheckpointError, ConfigurationError
from repro.hh.base import FrequencyEstimator
from repro.hierarchy.base import Hierarchy

_MASK64 = (1 << 64) - 1
#: Odd multiplicative-hash constants (golden-ratio and xxhash64 primes).
_GOLDEN_SRC = 0x9E3779B97F4A7C15
_GOLDEN_DST = 0xC2B2AE3D27D4EB4F
#: Keep the top 31 bits of the mixed word: the low bits of ``x * odd`` are a
#: permutation of ``x``'s low bits, the high bits are well mixed.
_MIX_SHIFT = 33


def spawn_shard_seeds(seed: Optional[int], shards: int) -> List[int]:
    """Derive one independent RNG seed per shard via ``SeedSequence.spawn``.

    Reproducible: a fixed ``(seed, shards)`` pair always yields the same
    seed list.  Independent: spawned children occupy disjoint entropy
    streams, so two shards never see identical draw sequences (the paired
    regression test feeds both seeds into RHHH and compares the node
    choices).  ``seed=None`` draws fresh OS entropy, matching the unseeded
    behaviour of the underlying algorithms.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    root = np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in root.spawn(shards)]


def per_shard_algorithm_spec(spec: AlgorithmSpec, seed: Optional[int], shards: int) -> AlgorithmSpec:
    """The spec one shard replica is built from: own seed, divided memory budget.

    A memory-budgeted auto counter (``CounterSpec(auto=True, memory_bytes=B)``)
    describes the *deployment's* budget; ``N`` shards each get ``B // N`` so
    the sharded run stays inside the same envelope.  The churn hint divides
    the same way: hash partitioning spreads the distinct keys evenly, so one
    shard sees roughly ``working_set // N`` of them.
    """
    counter = spec.counter
    if counter is not None and counter.auto and counter.memory_bytes is not None:
        working_set = counter.working_set
        if working_set is not None:
            working_set = max(1, working_set // shards)
        counter = dataclasses.replace(
            counter,
            memory_bytes=max(1, counter.memory_bytes // shards),
            working_set=working_set,
        )
    return dataclasses.replace(spec, seed=seed, counter=counter)


# --------------------------------------------------------------------------- #
# hash partitioning
# --------------------------------------------------------------------------- #


def shard_of_key(key: Hashable, shards: int) -> int:
    """Shard owning ``key`` - the scalar twin of :func:`shard_assignments`.

    Integer and integer-pair keys use the same multiplicative mix as the
    vectorized path (modulo ``2**64``), so a key is routed identically
    whether it arrives through ``update`` or inside a numpy batch; other key
    types fall back to Python ``hash`` (deterministic per process family
    only for types unaffected by hash randomization, which covers the ints
    and int tuples the hierarchies emit).
    """
    if isinstance(key, tuple) and len(key) == 2:
        src, dst = key
        if isinstance(src, (int, np.integer)) and isinstance(dst, (int, np.integer)):
            mixed = ((int(src) * _GOLDEN_SRC) & _MASK64) ^ ((int(dst) * _GOLDEN_DST) & _MASK64)
            return (mixed >> _MIX_SHIFT) % shards
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        return (((int(key) * _GOLDEN_SRC) & _MASK64) >> _MIX_SHIFT) % shards
    return hash(key) % shards


def shard_assignments(keys: Sequence, shards: int) -> Optional[np.ndarray]:
    """Per-packet shard ids for a key batch, or ``None`` for non-numeric keys.

    Vectorized multiplicative hashing over the batch: 1-D integer arrays mix
    each key, ``(n, 2)`` arrays mix source and destination with different
    odd constants.  Identical keys always land in the same shard, which is
    what makes the shard summaries key-disjoint and the ``disjoint=True``
    merge reduction valid.
    """
    arr = coerce_key_array(keys, len(keys))
    if arr is None or arr.dtype.kind not in "iu":
        return None
    if arr.ndim == 1:
        mixed = arr.astype(np.uint64) * np.uint64(_GOLDEN_SRC)
    elif arr.ndim == 2 and arr.shape[1] == 2:
        mixed = (arr[:, 0].astype(np.uint64) * np.uint64(_GOLDEN_SRC)) ^ (
            arr[:, 1].astype(np.uint64) * np.uint64(_GOLDEN_DST)
        )
    else:
        return None
    return ((mixed >> np.uint64(_MIX_SHIFT)) % np.uint64(shards)).astype(np.int64)


# --------------------------------------------------------------------------- #
# the sharded engine
# --------------------------------------------------------------------------- #


class ShardedHHH(HHHAlgorithm):
    """Hash-partitioned shard replicas of a lattice HHH algorithm.

    Args:
        algorithm: the :class:`~repro.api.specs.AlgorithmSpec` each shard
            replica is built from (or a bare registry name).  The spec's
            ``seed`` is the *root* seed; per-shard seeds are spawned from it.
        hierarchy: the hierarchical domain - a registry name (preferred for
            process workers: each worker rebuilds it by name) or a
            :class:`~repro.hierarchy.base.Hierarchy` instance (pickled to
            the workers; the builtin hierarchies are plain data).
        shards: number of shard replicas (>= 1).
        parallel: ``True`` gives each shard a worker process; ``False`` runs
            the replicas in-process (same results, no processes - the
            lockstep reference and the sensible choice for tiny runs).
        start_method: multiprocessing start method for the worker pool
            (default ``"spawn"``, the method that works on every platform
            and never inherits live state).
        supervisor: failure handling for the worker pool - a
            :class:`~repro.core.supervise.SupervisorPolicy`, a bare policy
            name (``"fail"``/``"restart"``/``"degrade"``), or ``None`` for
            the default fail-fast policy.
        fault_plan: optional :class:`~repro.core.faults.FaultPlan` firing
            deterministic worker kills/delays at scheduled batch indices
            (``parallel=True`` only; the fault-injection test hook).
    """

    name = "sharded"

    def __init__(
        self,
        algorithm: Union[AlgorithmSpec, str] = "rhhh",
        hierarchy: Union[Hierarchy, str] = "2d-bytes",
        shards: int = 2,
        *,
        parallel: bool = True,
        start_method: str = "spawn",
        supervisor: Union[SupervisorPolicy, str, None] = None,
        fault_plan=None,
    ) -> None:
        from repro.api.registry import build_algorithm, make_hierarchy

        spec = AlgorithmSpec(name=algorithm) if isinstance(algorithm, str) else algorithm
        if not isinstance(spec, AlgorithmSpec):
            raise ConfigurationError(
                f"algorithm must be an AlgorithmSpec or name, got {type(algorithm).__name__}"
            )
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ConfigurationError(f"shards must be a positive integer, got {shards!r}")
        if isinstance(supervisor, str):
            supervisor = SupervisorPolicy(policy=supervisor)
        elif supervisor is None:
            supervisor = SupervisorPolicy()
        elif not isinstance(supervisor, SupervisorPolicy):
            raise ConfigurationError(
                f"supervisor must be a SupervisorPolicy or policy name, "
                f"got {type(supervisor).__name__}"
            )
        if fault_plan is not None and not parallel:
            raise ConfigurationError(
                "fault_plan injects worker kills/delays and requires parallel=True"
            )
        hierarchy_obj = make_hierarchy(hierarchy) if isinstance(hierarchy, str) else hierarchy
        super().__init__(hierarchy_obj)
        self._spec = spec
        self._shards = shards
        self._parallel = bool(parallel)
        self._start_method = start_method
        self._policy = supervisor
        self._seeds = spawn_shard_seeds(spec.seed, shards)
        self._shard_specs = [
            per_shard_algorithm_spec(spec, seed, shards) for seed in self._seeds
        ]
        # The merged-output delegate: a replica-shaped instance (per-shard
        # counter sizing, so capacities line up with the shard summaries)
        # whose counters/total are replaced by the merged state at output
        # time.  Building it up front also fail-fasts on unshardable specs.
        self._template = build_algorithm(
            per_shard_algorithm_spec(spec, spec.seed, shards), hierarchy_obj
        )
        if not hasattr(self._template, "_counters"):
            raise ConfigurationError(
                f"algorithm {spec.name!r} keeps no per-node counter lattice; "
                "sharded execution supports the lattice algorithms (rhhh, mst, sampled_mst)"
            )
        probe = self._template._counters[0]
        if type(probe).merge is FrequencyEstimator.merge:
            raise ConfigurationError(
                f"counter backend {type(probe).__name__} does not implement merge(); "
                "pick a mergeable backend (space_saving, array_space_saving, "
                "misra_gries, count_min, count_sketch)"
            )
        # Hash partitioning is key-disjoint only where the counter keys ARE
        # the routed keys: the fully-specified (level-0) lattice node.
        # Generalized nodes aggregate keys from many shards and must take
        # the generic summed-bound merge.
        self._node_disjoint = [
            hierarchy_obj.node_level(node) == 0 for node in range(hierarchy_obj.size)
        ]
        self._replicas: List[HHHAlgorithm] = []
        self._supervisor: Optional[ShardSupervisor] = None
        self._batch_index = 0
        self._closed = False
        # Incremental-query plumbing.  Serial mode caches the merged counter
        # of each lattice node keyed by the per-replica version stamps of
        # that node; parallel mode (full states shipped per query) caches
        # the whole merge keyed by the dispatch clock.  The template's
        # version/cache pair is swapped in around the hijacked output call
        # so the merged lattice gets its own incremental passes, disjoint
        # from the template's native state.  Set ``_template_cache = None``
        # to force every query through the from-scratch reference path.
        hierarchy_size = hierarchy_obj.size
        self._merged_node_cache: List[Optional[Tuple[tuple, object]]] = [None] * hierarchy_size
        self._parallel_merge_cache: Optional[Tuple[tuple, List, int]] = None
        self._template_versions: List[int] = [0] * hierarchy_size
        self._template_cache: Optional[OutputCache] = OutputCache()
        if self._parallel:
            self._supervisor = ShardSupervisor(
                self._shard_specs,
                hierarchy if isinstance(hierarchy, str) else hierarchy_obj,
                supervisor,
                start_method=start_method,
                fault_plan=fault_plan,
            )
            self._supervisor.start()
        else:
            self._replicas = [
                build_algorithm(shard_spec, hierarchy_obj) for shard_spec in self._shard_specs
            ]

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #

    def close(self, raise_errors: bool = True) -> None:
        """Shut the worker pool down (idempotent; serial mode is a no-op).

        The supervisor collects close-time failures of shards not already
        reported and raises them as one error naming each shard and
        exitcode; ``raise_errors=False`` (the GC/unwind path) still cleans
        every process up but swallows the report.
        """
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.close(raise_errors=raise_errors)

    def __enter__(self) -> "ShardedHHH":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> None:
        # Do not mask an in-flight exception with close-time failures.
        self.close(raise_errors=exc_type is None)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close(raise_errors=False)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # stream processing
    # ------------------------------------------------------------------ #

    def update(self, key: Hashable, weight: int = 1) -> None:
        """Route one packet to the shard owning its key.

        ``self._total`` moves only after the owning shard acknowledged (or
        the supervisor recovered/degraded the failure), so a dispatch
        failure never leaves the recorded total ahead of the shard state.
        """
        shard = shard_of_key(key, self._shards)
        if self._parallel:
            batch = self._batch_index
            self._supervisor.begin_batch(batch)
            if self._supervisor.send_update(shard, ("update", key, weight), weight, batch):
                self._supervisor.collect_acks([shard], batch)
            self._supervisor.maybe_checkpoint(batch)
            self._batch_index += 1
        else:
            self._replicas[shard].update(key, weight)
            self._batch_index += 1
        self._total += weight

    # The sharded engine has no scalar twin of its own: its reference is the
    # serial replica set the lockstep suite (test_shard.py) drives in parallel.
    def update_batch(  # reprolint: ok(twin-parity)
        self, keys: Sequence[Hashable], weights: Optional[Sequence[int]] = None
    ) -> None:
        """Hash-partition the batch and drive every shard's own ``update_batch``.

        In parallel mode the sub-batches are dispatched to all workers before
        any acknowledgement is collected, so the per-shard vectorized engines
        run concurrently; serial mode applies them in shard order.  Either
        way each shard sees exactly the sub-stream of keys it owns, in stream
        order - the property the lockstep suite pins.  The recorded total
        only moves once every touched shard acknowledged (or its failure was
        recovered/degraded), keeping ``total`` consistent with shard state
        when a dispatch fails.
        """
        n = len(keys)
        if n == 0:
            return
        weights_arr, total_weight = coerce_weights(weights, n)
        parts = self._partition(keys, weights_arr, n)
        if self._parallel:
            batch = self._batch_index
            self._supervisor.begin_batch(batch)
            touched = []
            for shard, (sub_keys, sub_weights) in enumerate(parts):
                if len(sub_keys) == 0:
                    continue
                sub_weight = (
                    int(sub_weights.sum()) if sub_weights is not None else len(sub_keys)
                )
                message = ("update_batch", sub_keys, sub_weights)
                if self._supervisor.send_update(shard, message, sub_weight, batch):
                    touched.append(shard)
            self._supervisor.collect_acks(touched, batch)
            self._supervisor.maybe_checkpoint(batch)
            self._batch_index += 1
        else:
            for shard, (sub_keys, sub_weights) in enumerate(parts):
                if len(sub_keys):
                    self._replicas[shard].update_batch(sub_keys, sub_weights)
            self._batch_index += 1
        self._total += total_weight

    def _partition(
        self, keys: Sequence, weights_arr: Optional[np.ndarray], n: int
    ) -> List[Tuple[Sequence, Optional[np.ndarray]]]:
        """Split a batch into per-shard ``(keys, weights)`` sub-batches."""
        if self._shards == 1:
            return [(keys if isinstance(keys, np.ndarray) else list(keys), weights_arr)]
        assignments = shard_assignments(keys, self._shards)
        if assignments is None:
            key_list = list(self._iter_batch_keys(keys))
            buckets: List[List] = [[] for _ in range(self._shards)]
            weight_buckets: List[List[int]] = [[] for _ in range(self._shards)]
            weight_list = weights_arr.tolist() if weights_arr is not None else None
            for i, key in enumerate(key_list):
                shard = shard_of_key(key, self._shards)
                buckets[shard].append(key)
                if weight_list is not None:
                    weight_buckets[shard].append(weight_list[i])
            return [
                (
                    bucket,
                    np.asarray(weight_buckets[shard], dtype=np.int64)
                    if weights_arr is not None
                    else None,
                )
                for shard, bucket in enumerate(buckets)
            ]
        keys_arr = coerce_key_array(keys, n)
        parts: List[Tuple[Sequence, Optional[np.ndarray]]] = []
        for shard in range(self._shards):
            picked = np.flatnonzero(assignments == shard)
            parts.append(
                (
                    keys_arr[picked],
                    weights_arr[picked] if weights_arr is not None else None,
                )
            )
        return parts

    # ------------------------------------------------------------------ #
    # checkpoint/restore of the whole engine
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> dict:
        """Full engine snapshot: per-shard runtime states + engine bookkeeping.

        Plain picklable data, suitable for
        :func:`repro.core.checkpoint.save_checkpoint`.  Raises
        :class:`~repro.exceptions.CheckpointError` on a degraded engine
        (lost shards have no state left to snapshot).
        """
        if self._parallel:
            shard_states = self._supervisor.runtime_states()
        else:
            shard_states = [capture_runtime_state(replica) for replica in self._replicas]
        return {
            "engine": "sharded",
            "shards": self._shards,
            "seeds": list(self._seeds),
            "total": self._total,
            "batch_index": self._batch_index,
            "shard_states": shard_states,
        }

    def restore_state(self, state: dict) -> None:
        """Apply a :meth:`snapshot_state` snapshot to this (freshly built) engine.

        The engine must have been built from the same spec: shard count and
        spawned seeds are verified, so a checkpoint can never be silently
        replayed onto a differently-partitioned engine.  In parallel mode
        the restored states also become the supervisor's recovery baseline.
        """
        if state.get("engine") != "sharded":
            raise CheckpointError(
                f"checkpoint holds {state.get('engine')!r} state, expected 'sharded'"
            )
        if state.get("shards") != self._shards:
            raise CheckpointError(
                f"checkpoint was taken with {state.get('shards')} shards, engine has {self._shards}"
            )
        if list(state.get("seeds", [])) != list(self._seeds):
            raise CheckpointError(
                "checkpoint shard seeds do not match this engine's spawned seeds "
                "(different root seed or shard count)"
            )
        shard_states = state["shard_states"]
        if self._parallel:
            self._supervisor.restore_states(shard_states)
        else:
            for replica, shard_state in zip(self._replicas, shard_states):
                apply_runtime_state(replica, shard_state)
        self._total = int(state["total"])
        self._batch_index = int(state["batch_index"])
        # Replaced shard state invalidates every merge/query cache: restored
        # version stamps could coincidentally match cached signatures from a
        # different timeline.
        self._merged_node_cache = [None] * len(self._merged_node_cache)
        self._parallel_merge_cache = None
        if self._template_cache is not None:
            self._template_cache.invalidate()

    # ------------------------------------------------------------------ #
    # the merge reduction and queries
    # ------------------------------------------------------------------ #

    def _shard_states(self) -> List[Tuple[int, List]]:
        """Collect ``(total, counters)`` from every shard.

        Parallel snapshots arrive as fresh pickled copies via the
        supervisor, which substitutes the last supervision checkpoint for a
        degraded shard; the serial path deep-copies shard 0 (the merge
        target) and hands the rest over read-only - ``merge`` never mutates
        its argument.
        """
        if self._parallel:
            return self._supervisor.merge_states()
        states = []
        for shard, replica in enumerate(self._replicas):
            counters = replica._counters
            if shard == 0:
                counters = copy.deepcopy(counters)
            states.append((replica.total, counters))
        return states

    def merged_counters(self) -> Tuple[List, int]:
        """Reduce the shard summaries into one per-node counter list.

        Returns ``(counters, total)``: the merge of every shard's per-node
        summaries (key-disjoint at the fully-specified node, generic
        summed-bound elsewhere) and the summed shard totals.  Under the
        degrade policy a lost shard contributes its last checkpointed
        summary, so the returned total *excludes* the packets reported in
        the supervisor's loss report.
        """
        states = self._shard_states()
        if not states:
            raise AlgorithmError(
                "no shard state survives the failures: every shard was lost "
                "before its first supervision checkpoint"
            )
        merged = list(states[0][1])
        total = states[0][0]
        for shard_total, counters in states[1:]:
            total += shard_total
            for node, counter in enumerate(counters):
                merged[node].merge(counter, disjoint=self._node_disjoint[node])
        return merged, total

    def _bump_template_versions(self) -> None:
        versions = self._template_versions
        for node in range(len(versions)):
            versions[node] += 1

    def _merged_counters_cached(self) -> Tuple[List, int]:
        """Incremental twin of :meth:`merged_counters`.

        Serial mode re-merges only the lattice nodes whose per-replica
        version stamps moved since the last query, reusing the cached merged
        summary everywhere else; a rebuilt node bumps its template version so
        the incremental output pass re-enumerates exactly those nodes.
        Parallel mode ships whole shard states per query, so the merge is
        cached wholesale and keyed on the dispatch clock (plus the loss
        account, which can move without a dispatch under the degrade
        policy).  Either way the merged counters are value-identical to
        :meth:`merged_counters` - same merge order, same disjointness flags.
        """
        if self._parallel:
            lost = self._supervisor.lost_packets()
            key = (self._batch_index, lost)
            cached = self._parallel_merge_cache
            if cached is not None and cached[0] == key:
                return cached[1], cached[2]
            merged, total = self.merged_counters()
            self._parallel_merge_cache = (key, merged, total)
            self._bump_template_versions()
            return merged, total
        replicas = self._replicas
        if any(not hasattr(replica, "_versions") for replica in replicas):
            # A replica without version stamps cannot signal staleness;
            # fall back to a full merge with every node marked dirty.
            merged, total = self.merged_counters()
            self._bump_template_versions()
            return merged, total
        merged = []
        for node in range(len(self._merged_node_cache)):
            sig = tuple(replica._versions[node] for replica in replicas)
            cached = self._merged_node_cache[node]
            if cached is not None and cached[0] == sig:
                merged.append(cached[1])
                continue
            counter = copy.deepcopy(replicas[0]._counters[node])
            disjoint = self._node_disjoint[node]
            for replica in replicas[1:]:
                counter.merge(replica._counters[node], disjoint=disjoint)
            self._merged_node_cache[node] = (sig, counter)
            self._template_versions[node] += 1
            merged.append(counter)
        total = sum(replica.total for replica in replicas)
        return merged, total

    def output(self, theta: float) -> HHHOutput:
        """Merge the shards and run the underlying algorithm's Output on the result.

        The delegate instance supplies the algorithm-specific scaling and
        sampling correction (``V`` and the ``2 Z sqrt(NV)`` term for RHHH,
        the plain lattice output for MST), computed against the *combined*
        stream length.  Under the degrade policy the lost packets (weight
        dispatched to dead shards that no surviving or checkpointed state
        accounts for) widen the bounds conservatively: ``N`` still counts
        them, every conditioned estimate gains the full lost weight (so no
        prefix that could have reached the threshold is dropped) and every
        candidate's upper bound is stretched by it; the per-shard
        :class:`~repro.core.supervise.ShardLoss` reports ride along on
        ``failed_shards``.

        Queries run incrementally by default: the merged lattice carries the
        wrapper-owned version stamps and output cache, so a repeat query
        re-enumerates only the nodes whose merge was rebuilt.  Setting
        ``_template_cache = None`` forces the from-scratch reference path
        (full re-merge, uncached output pass) - the parity suite compares
        the two.  Either way the hijacked template attributes (counters,
        total, correction, version/cache pair) are all restored afterwards,
        so interleaved direct use of the template never sees merged state.
        """
        incremental = self._template_cache is not None
        if incremental:
            merged, merged_total = self._merged_counters_cached()
        else:
            merged, merged_total = self.merged_counters()
        lost = self._supervisor.lost_packets() if self._supervisor is not None else 0
        losses = self._supervisor.losses() if self._supervisor is not None else []
        template = self._template
        saved_counters = template._counters
        saved_total = template._total
        saved_versions = getattr(template, "_versions", None)
        saved_cache = getattr(template, "_output_cache", None)
        has_cache_attrs = saved_versions is not None
        template._counters = merged
        template._total = merged_total + lost
        template.extra_correction = float(lost)
        if has_cache_attrs:
            if incremental:
                template._versions = self._template_versions
                template._output_cache = self._template_cache
            else:
                template._output_cache = None
        try:
            result = template.output(theta)
        finally:
            template.extra_correction = 0.0
            template._counters = saved_counters
            template._total = saved_total
            if has_cache_attrs:
                template._versions = saved_versions
                template._output_cache = saved_cache
        if lost:
            result.candidates = [
                dataclasses.replace(candidate, upper_bound=candidate.upper_bound + lost)
                for candidate in result.candidates
            ]
        result.failed_shards = list(losses)
        return result

    def counters(self) -> int:
        if self._parallel:
            return self._shards * self._template.counters()
        return sum(replica.counters() for replica in self._replicas)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> int:
        """Number of shard replicas."""
        return self._shards

    @property
    def parallel(self) -> bool:
        """Whether shards run in worker processes."""
        return self._parallel

    @property
    def supervisor(self) -> Optional[ShardSupervisor]:
        """The worker-pool supervisor (``None`` in serial mode)."""
        return self._supervisor

    @property
    def supervisor_policy(self) -> SupervisorPolicy:
        """The failure policy in force."""
        return self._policy

    @property
    def failed_shards(self) -> List[ShardLoss]:
        """Loss reports of shards abandoned under the degrade policy."""
        return self._supervisor.losses() if self._supervisor is not None else []

    @property
    def batch_index(self) -> int:
        """Number of update/update_batch dispatch steps performed so far."""
        return self._batch_index

    @property
    def shard_seeds(self) -> List[int]:
        """The per-shard RNG seeds spawned from the root seed."""
        return list(self._seeds)

    @property
    def shard_specs(self) -> List[AlgorithmSpec]:
        """The per-shard algorithm specs (own seed, divided memory budget)."""
        return list(self._shard_specs)

    def worker_pids(self) -> dict:
        """Pid of every live worker keyed by shard (parallel mode only)."""
        if self._supervisor is None:
            return {}
        return self._supervisor.worker_pids()

    def shard_algorithm(self, shard: int) -> HHHAlgorithm:
        """The live replica of ``shard`` (serial mode only; for tests)."""
        if self._parallel:
            raise AlgorithmError("shard replicas live in worker processes when parallel=True")
        return self._replicas[shard]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "parallel" if self._parallel else "serial"
        return (
            f"ShardedHHH({self._spec.name!r}, shards={self._shards}, {mode}, "
            f"N={self._total})"
        )
