"""Randomized Hierarchical Heavy Hitters (Algorithm 1 of the paper).

An RHHH instance keeps one counter summary (Space Saving by default) per
lattice node.  On every packet it draws a uniform integer ``d`` in
``[0, V)``; when ``d < H`` it updates the single counter instance of lattice
node ``d`` with the packet's key masked to that node, otherwise it ignores the
packet.  The worst-case per-packet work is therefore a single O(1) counter
update regardless of the hierarchy size - the paper's headline contribution.

The Output procedure rescales every counter value by ``V`` (each node sees a
roughly ``1/V`` sample of the stream) and adds the sampling-error correction
``2 Z_{1-delta} sqrt(N V)`` to each conditioned-frequency estimate so that the
coverage guarantee of Definition 10 holds once ``N`` exceeds the convergence
bound ``psi``.

The class also implements the multi-update variant of Corollary 6.8
(``updates_per_packet = r > 1``), which converges ``r`` times faster at the
cost of ``r`` counter updates per packet.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional

from repro.analysis.bounds import coverage_correction
from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.config import RHHHConfig
from repro.core.output import lattice_output
from repro.exceptions import ConfigurationError
from repro.hh.base import CounterAlgorithm
from repro.hh.factory import make_counter
from repro.hierarchy.base import Hierarchy


class RHHH(HHHAlgorithm):
    """The paper's randomized constant-time HHH algorithm.

    Args:
        hierarchy: the hierarchical domain (1-D or 2-D).
        config: a fully specified :class:`~repro.core.config.RHHHConfig`.  When
            omitted, one is built from the keyword arguments below.
        epsilon: overall accuracy target (ignored when ``config`` is given).
        delta: overall confidence target (ignored when ``config`` is given).
        v: the performance parameter ``V``; ``None`` means ``V = H`` and
            ``v = 10 * H`` reproduces the paper's "10-RHHH".
        counter: name of the per-node counter algorithm.
        seed: RNG seed for reproducible experiments.
        updates_per_packet: the ``r`` of Corollary 6.8 (default 1).
    """

    name = "rhhh"

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: Optional[RHHHConfig] = None,
        *,
        epsilon: float = 0.001,
        delta: float = 0.001,
        v: Optional[int] = None,
        counter: str = "space_saving",
        seed: Optional[int] = None,
        updates_per_packet: int = 1,
    ) -> None:
        super().__init__(hierarchy)
        if config is None:
            config = RHHHConfig(
                h=hierarchy.size, epsilon=epsilon, delta=delta, v=v, counter=counter, seed=seed
            )
        elif config.h != hierarchy.size:
            raise ConfigurationError(
                f"config.h ({config.h}) does not match the hierarchy size ({hierarchy.size})"
            )
        if updates_per_packet < 1:
            raise ConfigurationError(f"updates_per_packet must be >= 1, got {updates_per_packet}")
        self._config = config
        self._r = updates_per_packet
        self._rng = random.Random(config.seed)
        self._v = config.effective_v
        self._h = hierarchy.size
        self._counters: List[CounterAlgorithm] = [
            make_counter(config.counter, config.counter_epsilon) for _ in range(self._h)
        ]
        self._generalizers = hierarchy.compile_generalizers()
        self._ignored = 0
        self._update_calls = 0

    # ------------------------------------------------------------------ #
    # stream processing
    # ------------------------------------------------------------------ #

    def update(self, key: Hashable, weight: int = 1) -> None:
        """Process one packet: update at most ``updates_per_packet`` random lattice nodes."""
        self._total += weight
        randrange = self._rng.randrange
        v = self._v
        h = self._h
        for _ in range(self._r):
            d = randrange(v)
            if d < h:
                self._counters[d].update(self._generalizers[d](key), weight)
                self._update_calls += 1
            else:
                self._ignored += 1

    def update_fast(self, key: Hashable) -> None:
        """Single-update unit-weight fast path used by the speed benchmarks.

        Functionally identical to ``update(key)`` with ``updates_per_packet=1``
        and ``weight=1``, but avoids the bookkeeping attributes to stay as
        close as a pure-Python implementation can to the per-packet cost of
        the paper's C implementation.
        """
        self._total += 1
        d = self._rng.randrange(self._v)
        if d < self._h:
            self._counters[d].update(self._generalizers[d](key), 1)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def output(self, theta: float) -> HHHOutput:
        """Return the approximate HHH set for threshold fraction ``theta`` (Algorithm 1, Output)."""
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        scale = self._v / self._r
        correction = (
            coverage_correction(self._total * self._r, self._v, self._config.delta) / self._r
            if self._total > 0
            else 0.0
        )
        return lattice_output(
            self._hierarchy,
            self._counters,
            theta,
            self._total,
            scale=scale,
            correction=correction,
        )

    def frequency_estimate(self, key: Hashable, node: int = 0) -> float:
        """Estimate the frequency of ``key`` masked to lattice node ``node``."""
        value = self._hierarchy.generalize(key, node)
        return self._counters[node].estimate(value) * self._v / self._r

    def counters(self) -> int:
        return sum(c.counters() for c in self._counters)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> RHHHConfig:
        """The resolved configuration of this instance."""
        return self._config

    @property
    def v(self) -> int:
        """The performance parameter ``V``."""
        return self._v

    @property
    def updates_per_packet(self) -> int:
        """The ``r`` of the multi-update variant (1 for plain RHHH)."""
        return self._r

    @property
    def ignored_packets(self) -> int:
        """Packets that drew ``d >= H`` and therefore updated nothing."""
        return self._ignored

    @property
    def counter_updates(self) -> int:
        """Total number of counter updates performed so far."""
        return self._update_calls

    @property
    def is_converged(self) -> bool:
        """True when the stream has exceeded the convergence bound ``psi`` (Theorem 6.17)."""
        return self._config.is_converged(self._total * self._r)

    def node_counter(self, node: int) -> CounterAlgorithm:
        """Return the counter summary of lattice node ``node`` (for tests and diagnostics)."""
        return self._counters[node]
