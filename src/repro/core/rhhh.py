"""Randomized Hierarchical Heavy Hitters (Algorithm 1 of the paper).

An RHHH instance keeps one counter summary (Space Saving by default) per
lattice node.  On every packet it draws a uniform integer ``d`` in
``[0, V)``; when ``d < H`` it updates the single counter instance of lattice
node ``d`` with the packet's key masked to that node, otherwise it ignores the
packet.  The worst-case per-packet work is therefore a single O(1) counter
update regardless of the hierarchy size - the paper's headline contribution.

The Output procedure rescales every counter value by ``V`` (each node sees a
roughly ``1/V`` sample of the stream) and adds the sampling-error correction
``2 Z_{1-delta} sqrt(N V)`` to each conditioned-frequency estimate so that the
coverage guarantee of Definition 10 holds once ``N`` exceeds the convergence
bound ``psi``.

The class also implements the multi-update variant of Corollary 6.8
(``updates_per_packet = r > 1``), which converges ``r`` times faster at the
cost of ``r`` counter updates per packet.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.analysis.bounds import coverage_correction
from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.batch import (
    coerce_key_array,
    coerce_weights,
    feed_counter,
    feed_counter_reference,
    group_by_node,
    sorted_pairs,
)
from repro.core.config import RHHHConfig
from repro.core.output import OutputCache, lattice_output, validate_theta
from repro.exceptions import ConfigurationError
from repro.hh.base import CounterAlgorithm
from repro.hh.factory import CounterLike, prepare_counter_factory
from repro.hierarchy.base import Hierarchy


class RHHH(HHHAlgorithm):
    """The paper's randomized constant-time HHH algorithm.

    Args:
        hierarchy: the hierarchical domain (1-D or 2-D).
        config: a fully specified :class:`~repro.core.config.RHHHConfig`.  When
            omitted, one is built from the keyword arguments below.
        epsilon: overall accuracy target (ignored when ``config`` is given).
        delta: overall confidence target (ignored when ``config`` is given).
        v: the performance parameter ``V``; ``None`` means ``V = H`` and
            ``v = 10 * H`` reproduces the paper's "10-RHHH".
        counter: the per-node counter backend - a registered backend name, a
            :class:`~repro.api.specs.CounterSpec` (explicit sketch sizes,
            memory-budget auto-selection, ...), or a bare
            ``factory(epsilon) -> CounterAlgorithm`` callable.
        seed: RNG seed for reproducible experiments.
        updates_per_packet: the ``r`` of Corollary 6.8 (default 1).
    """

    name = "rhhh"

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: Optional[RHHHConfig] = None,
        *,
        epsilon: float = 0.001,
        delta: float = 0.001,
        v: Optional[int] = None,
        counter: CounterLike = "space_saving",
        seed: Optional[int] = None,
        updates_per_packet: int = 1,
    ) -> None:
        super().__init__(hierarchy)
        if config is None:
            config = RHHHConfig(
                h=hierarchy.size, epsilon=epsilon, delta=delta, v=v, counter=counter, seed=seed
            )
        elif config.h != hierarchy.size:
            raise ConfigurationError(
                f"config.h ({config.h}) does not match the hierarchy size ({hierarchy.size})"
            )
        if updates_per_packet < 1:
            raise ConfigurationError(f"updates_per_packet must be >= 1, got {updates_per_packet}")
        self._config = config
        self._r = updates_per_packet
        self._rng = random.Random(config.seed)
        self._v = config.effective_v
        self._h = hierarchy.size
        counter_factory = prepare_counter_factory(config.counter, config.counter_epsilon)
        self._counters: List[CounterAlgorithm] = [counter_factory() for _ in range(self._h)]
        self._generalizers = hierarchy.compile_generalizers()
        self._batch_generalizers = hierarchy.compile_batch_generalizers()
        # The batch path pre-draws node choices with a numpy Generator: an
        # independent (but equally seeded, hence reproducible) RNG stream from
        # the per-packet random.Random used by update()/update_fast().
        self._batch_rng = np.random.default_rng(config.seed)
        self._ignored = 0
        self._update_calls = 0
        #: Per-lattice-node update counters driving the incremental query
        #: engine: any bump marks the node dirty for the next output pass.
        self._versions: List[int] = [0] * self._h
        self._output_cache: Optional[OutputCache] = OutputCache()

    # ------------------------------------------------------------------ #
    # stream processing
    # ------------------------------------------------------------------ #

    def update(self, key: Hashable, weight: int = 1) -> None:
        """Process one packet: update at most ``updates_per_packet`` random lattice nodes."""
        self._total += weight
        randrange = self._rng.randrange
        v = self._v
        h = self._h
        for _ in range(self._r):
            d = randrange(v)
            if d < h:
                self._counters[d].update(self._generalizers[d](key), weight)
                self._versions[d] += 1
                self._update_calls += 1
            else:
                self._ignored += 1

    def update_fast(self, key: Hashable) -> None:
        """Single-update unit-weight fast path used by the speed benchmarks.

        Functionally identical to ``update(key)`` with ``updates_per_packet=1``
        and ``weight=1``, but avoids the bookkeeping attributes to stay as
        close as a pure-Python implementation can to the per-packet cost of
        the paper's C implementation.
        """
        self._total += 1
        d = self._rng.randrange(self._v)
        if d < self._h:
            self._counters[d].update(self._generalizers[d](key), 1)
            self._versions[d] += 1

    # ------------------------------------------------------------------ #
    # batch stream processing
    # ------------------------------------------------------------------ #

    def _draw_nodes(self, count: int) -> np.ndarray:
        """Pre-draw the node choices of ``count * r`` updates in one RNG call.

        The draws are laid out packet-major: packet ``i``'s ``r`` draws occupy
        indices ``i*r .. i*r + r - 1``, matching the nested loop order of the
        scalar reference.  Both batch paths share this helper so they consume
        the RNG stream identically.
        """
        return self._batch_rng.integers(0, self._v, size=count * self._r)

    def update_batch(self, keys: Sequence[Hashable], weights: Optional[Sequence[int]] = None) -> None:
        """Vectorized batch update (the paper's Algorithm 1, amortized).

        For every packet (and each of its ``r`` updates) a node choice ``d``
        is pre-drawn uniformly from ``[0, V)`` in a single numpy call; the
        ``d >= H`` ignores are discarded in bulk; surviving packets are
        grouped by lattice node; each group's keys are masked with the
        hierarchy's vectorized batch generalizers; and duplicate masked keys
        are pre-aggregated so every counter sees one weighted update per
        distinct key, applied in ascending key order.

        The sampling process is identical in distribution to a per-packet
        :meth:`update` loop, but the node choices come from this instance's
        numpy Generator rather than its ``random.Random``, so a batch-fed
        instance and an update()-fed instance diverge even with equal seeds.
        :meth:`update_batch_reference` replays the exact batch semantics with
        scalar loops and is bit-identical to this method for equal seeds.
        """
        n = len(keys)
        if n == 0:
            return
        weights_arr, total_weight = coerce_weights(weights, n)
        keys_arr = coerce_key_array(keys, n)
        if keys_arr is None:
            # Non-numeric keys: vectorized masking does not apply, but the
            # batch semantics (and RNG consumption) must stay identical.
            self._apply_batch_scalar(list(keys), weights_arr, self._draw_nodes(n))
            self._total += total_weight
            return
        draws = self._draw_nodes(n)
        self._total += total_weight
        survive = draws < self._h
        survived = int(survive.sum())
        self._ignored += draws.size - survived
        self._update_calls += survived
        if survived == 0:
            return
        nodes = draws[survive]
        if self._r > 1:
            chosen = np.repeat(np.arange(n), self._r)[survive]
        else:
            chosen = np.flatnonzero(survive)
        for node, packet_ids in group_by_node(nodes, chosen):
            masked = self._batch_generalizers[node](keys_arr[packet_ids])
            group_weights = weights_arr[packet_ids] if weights_arr is not None else None
            feed_counter(self._counters[node], masked, group_weights)
            self._versions[node] += 1

    def update_batch_reference(
        self, keys: Sequence[Hashable], weights: Optional[Sequence[int]] = None
    ) -> None:
        """Scalar specification of :meth:`update_batch` (pure-Python loops).

        Consumes the same pre-drawn node choices and applies the same
        group-by-node / aggregate-duplicates / ascending-key-order semantics,
        but with per-key dictionaries and scalar generalizers and counter
        updates.  A same-seed instance fed through either method reaches a
        bit-identical state; the equivalence tests rely on this.
        """
        n = len(keys)
        if n == 0:
            return
        if weights is not None:
            if len(weights) != n:
                raise ConfigurationError(
                    f"weights length ({len(weights)}) does not match keys length ({n})"
                )
            weight_list = [int(w) for w in weights]
        else:
            weight_list = [1] * n
        draws = self._draw_nodes(n)
        self._total += sum(weight_list)
        self._apply_batch_scalar(keys, np.asarray(weight_list), draws)

    def _apply_batch_scalar(self, keys, weights_arr, draws) -> None:
        """Apply pre-drawn node choices to a batch with scalar loops."""
        h = self._h
        r = self._r
        weight_list = weights_arr.tolist() if weights_arr is not None else None
        per_node: dict = {}
        survived = 0
        ignored = 0
        for i, key in enumerate(self._iter_batch_keys(keys)):
            weight = weight_list[i] if weight_list is not None else 1
            for j in range(r):
                d = int(draws[i * r + j])
                if d >= h:
                    ignored += 1
                    continue
                survived += 1
                masked = self._generalizers[d](key)
                aggregate = per_node.setdefault(d, {})
                aggregate[masked] = aggregate.get(masked, 0) + weight
        self._ignored += ignored
        self._update_calls += survived
        for node in sorted(per_node):
            feed_counter_reference(self._counters[node], sorted_pairs(per_node[node]))
            self._versions[node] += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def output(self, theta: float) -> HHHOutput:
        """Return the approximate HHH set for threshold fraction ``theta`` (Algorithm 1, Output)."""
        theta = validate_theta(theta)
        scale = self._v / self._r
        correction = (
            coverage_correction(self._total * self._r, self._v, self._config.delta) / self._r
            if self._total > 0
            else 0.0
        ) + self.extra_correction
        return lattice_output(
            self._hierarchy,
            self._counters,
            theta,
            self._total,
            scale=scale,
            correction=correction,
            versions=self._versions,
            cache=self._output_cache,
        )

    def frequency_estimate(self, key: Hashable, node: int = 0) -> float:
        """Estimate the frequency of ``key`` masked to lattice node ``node``."""
        value = self._hierarchy.generalize(key, node)
        return self._counters[node].estimate(value) * self._v / self._r

    def counters(self) -> int:
        return sum(c.counters() for c in self._counters)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> RHHHConfig:
        """The resolved configuration of this instance."""
        return self._config

    @property
    def v(self) -> int:
        """The performance parameter ``V``."""
        return self._v

    @property
    def updates_per_packet(self) -> int:
        """The ``r`` of the multi-update variant (1 for plain RHHH)."""
        return self._r

    @property
    def ignored_packets(self) -> int:
        """Packets that drew ``d >= H`` and therefore updated nothing."""
        return self._ignored

    @property
    def counter_updates(self) -> int:
        """Total number of counter updates performed so far."""
        return self._update_calls

    @property
    def is_converged(self) -> bool:
        """True when the stream has exceeded the convergence bound ``psi`` (Theorem 6.17)."""
        return self._config.is_converged(self._total * self._r)

    def node_counter(self, node: int) -> CounterAlgorithm:
        """Return the counter summary of lattice node ``node`` (for tests and diagnostics)."""
        return self._counters[node]
