"""Shared interface of every hierarchical-heavy-hitter algorithm in the library.

Both the paper's contribution (:class:`repro.core.rhhh.RHHH`) and the baseline
algorithms (:mod:`repro.hhh`) implement :class:`HHHAlgorithm`, so the
evaluation harness, the examples and the simulated switch can treat them
interchangeably.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hierarchy.base import Hierarchy
from repro.hierarchy.prefix import Prefix


@dataclass(frozen=True)
class HHHCandidate:
    """One hierarchical-heavy-hitter report produced by an Output call.

    Attributes:
        prefix: the reported prefix (lattice node + masked value + rendering).
        lower_bound: lower bound on the prefix's frequency (``f^-`` in the paper).
        upper_bound: upper bound on the prefix's frequency (``f^+``).
        conditioned_estimate: the conservative conditioned-frequency estimate
            ``C^`` that made this prefix pass the ``theta * N`` test.
    """

    prefix: Prefix
    lower_bound: float
    upper_bound: float
    conditioned_estimate: float = 0.0

    @property
    def estimate(self) -> float:
        """Midpoint frequency estimate."""
        return (self.lower_bound + self.upper_bound) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.prefix.text or self.prefix} "
            f"[{self.lower_bound:.0f}, {self.upper_bound:.0f}] "
            f"(conditioned >= {self.conditioned_estimate:.0f})"
        )


@dataclass
class HHHOutput:
    """The full result of an Output call.

    Attributes:
        candidates: the reported prefixes, in the order they were selected
            (most specific levels first).
        total: stream length ``N`` at the time of the call.
        threshold: the absolute frequency threshold ``theta * N`` used.
        failed_shards: per-shard loss reports
            (:class:`repro.core.supervise.ShardLoss`) when a sharded engine
            served this output degraded; empty for healthy runs and
            unsharded algorithms.
    """

    candidates: List[HHHCandidate] = field(default_factory=list)
    total: int = 0
    threshold: float = 0.0
    failed_shards: List = field(default_factory=list)

    def prefixes(self) -> List[Prefix]:
        """Return just the reported prefixes."""
        return [c.prefix for c in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


class HHHAlgorithm(abc.ABC):
    """Abstract hierarchical-heavy-hitters algorithm.

    Subclasses process a stream of fully specified keys via :meth:`update` and
    report approximate HHH prefixes via :meth:`output`.
    """

    #: short name used by the evaluation harness and benchmark tables.
    name: str = "hhh"

    def __init__(self, hierarchy: Hierarchy) -> None:
        self._hierarchy = hierarchy
        self._total = 0
        #: Extra stream-level weight added to every conditioned estimate by
        #: :meth:`output` - zero in normal operation.  A degraded sharded
        #: engine sets it to the lost shards' unaccounted packet weight, so
        #: the coverage guarantee survives the loss: any prefix the missing
        #: packets could have pushed over ``theta * N`` still clears the
        #: threshold test.
        self.extra_correction: float = 0.0

    @property
    def hierarchy(self) -> Hierarchy:
        """The hierarchical domain this algorithm operates on."""
        return self._hierarchy

    @property
    def total(self) -> int:
        """Number of packets processed so far (``N``)."""
        return self._total

    @abc.abstractmethod
    def update(self, key: Hashable, weight: int = 1) -> None:
        """Process one packet carrying the fully specified key ``key``."""

    @abc.abstractmethod
    def output(self, theta: float) -> HHHOutput:
        """Return the approximate HHH set for threshold fraction ``theta``."""

    @abc.abstractmethod
    def counters(self) -> int:
        """Total number of counters (flow-table entries) in use."""

    def update_stream(self, keys) -> None:
        """Feed every key of an iterable through :meth:`update`."""
        for key in keys:
            self.update(key)

    def update_batch(self, keys: Sequence[Hashable], weights: Optional[Sequence[int]] = None) -> None:
        """Process a whole batch of packets at once.

        Semantically equivalent to calling :meth:`update` once per packet in
        stream order; this default *is* that sequential loop, so every
        algorithm supports the batch API out of the box.  Algorithms with a
        vectorizable hot path (notably :class:`repro.core.rhhh.RHHH`) override
        it to amortize per-packet interpreter overhead across the batch.

        Args:
            keys: the batch of fully specified keys.  Accepts any sequence;
                numpy arrays are understood natively (a ``(batch, 2)`` integer
                array is read as (source, destination) pairs).
            weights: optional per-packet weights, defaulting to 1 each.
        """
        if weights is None:
            update = self.update
            for key in self._iter_batch_keys(keys):
                update(key)
        else:
            if len(weights) != len(keys):
                raise ConfigurationError(
                    f"weights length ({len(weights)}) does not match keys length ({len(keys)})"
                )
            for key, weight in zip(self._iter_batch_keys(keys), weights):
                self.update(key, int(weight))

    @staticmethod
    def _iter_batch_keys(keys):
        """Iterate a key batch as plain Python keys (ints or tuples of ints)."""
        if isinstance(keys, np.ndarray):
            if keys.ndim == 2:
                return (tuple(row) for row in keys.tolist())
            return iter(keys.tolist())
        return iter(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(H={self._hierarchy.size}, N={self._total})"
