"""The paper's primary contribution: Randomized Hierarchical Heavy Hitters.

The public entry points are:

* :class:`~repro.core.config.RHHHConfig` - parameter handling (``epsilon``,
  ``delta``, ``theta``, ``V``) including the epsilon/delta split between the
  sampling process and the underlying counter algorithm, the over-sample
  correction of Corollary 6.5 and the convergence bound ``psi``;
* :class:`~repro.core.rhhh.RHHH` - Algorithm 1 of the paper, for one- and
  two-dimensional hierarchies, including the ``V > H`` (e.g. "10-RHHH")
  configurations and the multi-update variant of Corollary 6.8;
* :class:`~repro.core.base.HHHAlgorithm` / :class:`~repro.core.base.HHHCandidate`
  - the interface shared with the baseline algorithms in :mod:`repro.hhh`;
* :class:`~repro.core.shard.ShardedHHH` - the hash-partitioned parallel
  execution layer that runs shard replicas (optionally in worker processes)
  and reduces their counter summaries with the ``merge`` protocol.
"""

from repro.core.base import HHHAlgorithm, HHHCandidate
from repro.core.config import RHHHConfig
from repro.core.ingest import DEFAULT_RING_DEPTH, RingBufferIngest, rechunk_batches
from repro.core.output import SelectedIndex, calc_pred, conditioned_frequency_estimate, lattice_output
from repro.core.rhhh import RHHH

__all__ = [
    "HHHAlgorithm",
    "HHHCandidate",
    "RHHHConfig",
    "RHHH",
    "RingBufferIngest",
    "DEFAULT_RING_DEPTH",
    "rechunk_batches",
    "SelectedIndex",
    "ShardedHHH",
    "calc_pred",
    "conditioned_frequency_estimate",
    "lattice_output",
    "shard_assignments",
    "shard_of_key",
    "spawn_shard_seeds",
]


def __getattr__(name):
    # repro.core.shard imports repro.api (specs/registry), which imports
    # repro.core.rhhh back through the registry: resolve the shard exports
    # lazily so importing repro.core stays cycle-free.
    if name in ("ShardedHHH", "shard_assignments", "shard_of_key", "spawn_shard_seeds"):
        from repro.core import shard

        return getattr(shard, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
