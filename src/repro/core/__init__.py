"""The paper's primary contribution: Randomized Hierarchical Heavy Hitters.

The public entry points are:

* :class:`~repro.core.config.RHHHConfig` - parameter handling (``epsilon``,
  ``delta``, ``theta``, ``V``) including the epsilon/delta split between the
  sampling process and the underlying counter algorithm, the over-sample
  correction of Corollary 6.5 and the convergence bound ``psi``;
* :class:`~repro.core.rhhh.RHHH` - Algorithm 1 of the paper, for one- and
  two-dimensional hierarchies, including the ``V > H`` (e.g. "10-RHHH")
  configurations and the multi-update variant of Corollary 6.8;
* :class:`~repro.core.base.HHHAlgorithm` / :class:`~repro.core.base.HHHCandidate`
  - the interface shared with the baseline algorithms in :mod:`repro.hhh`.
"""

from repro.core.base import HHHAlgorithm, HHHCandidate
from repro.core.config import RHHHConfig
from repro.core.output import calc_pred, conditioned_frequency_estimate, lattice_output
from repro.core.rhhh import RHHH

__all__ = [
    "HHHAlgorithm",
    "HHHCandidate",
    "RHHHConfig",
    "RHHH",
    "calc_pred",
    "conditioned_frequency_estimate",
    "lattice_output",
]
