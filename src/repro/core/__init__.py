"""The paper's primary contribution: Randomized Hierarchical Heavy Hitters.

The public entry points are:

* :class:`~repro.core.config.RHHHConfig` - parameter handling (``epsilon``,
  ``delta``, ``theta``, ``V``) including the epsilon/delta split between the
  sampling process and the underlying counter algorithm, the over-sample
  correction of Corollary 6.5 and the convergence bound ``psi``;
* :class:`~repro.core.rhhh.RHHH` - Algorithm 1 of the paper, for one- and
  two-dimensional hierarchies, including the ``V > H`` (e.g. "10-RHHH")
  configurations and the multi-update variant of Corollary 6.8;
* :class:`~repro.core.base.HHHAlgorithm` / :class:`~repro.core.base.HHHCandidate`
  - the interface shared with the baseline algorithms in :mod:`repro.hhh`;
* :class:`~repro.core.shard.ShardedHHH` - the hash-partitioned parallel
  execution layer that runs shard replicas (optionally in worker processes)
  and reduces their counter summaries with the ``merge`` protocol;
* the fault-tolerance layer - :mod:`repro.core.checkpoint` (atomic,
  checksummed snapshots of any algorithm's runtime state),
  :mod:`repro.core.supervise` (worker supervision with ``fail`` / ``restart``
  / ``degrade`` policies) and :mod:`repro.core.faults` (deterministic fault
  injection for the recovery tests).
"""

from repro.core.base import HHHAlgorithm, HHHCandidate
from repro.core.config import RHHHConfig
from repro.core.faults import FAULT_KINDS, FaultEvent, FaultPlan
from repro.core.ingest import DEFAULT_RING_DEPTH, RingBufferIngest, rechunk_batches
from repro.core.output import SelectedIndex, calc_pred, conditioned_frequency_estimate, lattice_output
from repro.core.rhhh import RHHH

__all__ = [
    "HHHAlgorithm",
    "HHHCandidate",
    "RHHHConfig",
    "RHHH",
    "RingBufferIngest",
    "DEFAULT_RING_DEPTH",
    "rechunk_batches",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "SelectedIndex",
    "ShardedHHH",
    "ShardLoss",
    "ShardSupervisor",
    "SupervisorPolicy",
    "SUPERVISOR_POLICIES",
    "calc_pred",
    "capture_runtime_state",
    "apply_runtime_state",
    "conditioned_frequency_estimate",
    "lattice_output",
    "load_checkpoint",
    "restore_algorithm",
    "save_checkpoint",
    "shard_assignments",
    "shard_of_key",
    "snapshot_algorithm",
    "spawn_shard_seeds",
]

#: Late-bound exports, resolved through ``__getattr__`` to keep importing
#: ``repro.core`` cycle-free (shard/supervise reach back into ``repro.api``,
#: checkpoint is imported by ``repro.api.session``).
_LAZY_EXPORTS = {
    "ShardedHHH": "repro.core.shard",
    "shard_assignments": "repro.core.shard",
    "shard_of_key": "repro.core.shard",
    "spawn_shard_seeds": "repro.core.shard",
    "ShardLoss": "repro.core.supervise",
    "ShardSupervisor": "repro.core.supervise",
    "SupervisorPolicy": "repro.core.supervise",
    "SUPERVISOR_POLICIES": "repro.core.supervise",
    "capture_runtime_state": "repro.core.checkpoint",
    "apply_runtime_state": "repro.core.checkpoint",
    "load_checkpoint": "repro.core.checkpoint",
    "restore_algorithm": "repro.core.checkpoint",
    "save_checkpoint": "repro.core.checkpoint",
    "snapshot_algorithm": "repro.core.checkpoint",
}


def __getattr__(name):
    # repro.core.shard imports repro.api (specs/registry), which imports
    # repro.core.rhhh back through the registry: resolve the shard exports
    # lazily so importing repro.core stays cycle-free.
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
