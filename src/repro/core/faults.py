"""Deterministic fault injection: seeded schedules of crashes, hangs and read errors.

Fault-tolerance code is only trustworthy if its failure paths are exercised
deterministically, so this module expresses failures as *data*: a
:class:`FaultPlan` is a schedule of :class:`FaultEvent`\\ s pinned to batch
indices, either written out explicitly in a test or drawn reproducibly from
a seed with :meth:`FaultPlan.random`.  The execution layers consume the plan
at well-defined points:

* the shard supervisor (:mod:`repro.core.supervise`) fires ``kill`` events
  (SIGKILL of a worker process) and ``delay`` events (the worker sleeps
  before acknowledging, simulating a slow or hung pipe) at the start of the
  scheduled batch, *before* that batch is dispatched;
* :class:`repro.core.ingest.RingBufferIngest` raises scheduled
  ``ingest_error`` events from its producer;
* :meth:`repro.traffic.trace_io.TraceReader.key_batches` raises scheduled
  ``trace_error`` events, simulating a bad read mid-replay;
* the distributed transports (:mod:`repro.distrib.transport`) consume
  ``net_drop``/``net_delay``/``net_reorder`` events: ``at_batch`` is the
  per-switch *message* index, ``shard`` the emitting switch, and for
  ``net_delay`` the ``seconds`` field carries the number of delivery epochs
  the message is held back.

Every event fires exactly once; a plan is single-use state (build a fresh
one per engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, FaultInjectionError

#: Supported fault kinds and the layer that fires them.
FAULT_KINDS = (
    "kill",
    "delay",
    "ingest_error",
    "trace_error",
    "net_drop",
    "net_delay",
    "net_reorder",
)

#: The kinds consumed by the distributed transports: ``shard`` is the
#: emitting switch, ``at_batch`` that switch's 0-based message index.
NETWORK_FAULT_KINDS = ("net_drop", "net_delay", "net_reorder")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at_batch: 0-based batch index at which the event fires.
        shard: target shard for ``kill``/``delay`` events.
        seconds: sleep duration for ``delay`` events.
        message: text carried by injected ``*_error`` exceptions.
    """

    kind: str
    at_batch: int
    shard: Optional[int] = None
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not isinstance(self.at_batch, int) or isinstance(self.at_batch, bool) or self.at_batch < 0:
            raise ConfigurationError(f"at_batch must be a non-negative int, got {self.at_batch!r}")
        if self.kind in ("kill", "delay") + NETWORK_FAULT_KINDS and (
            self.shard is None or self.shard < 0
        ):
            raise ConfigurationError(f"{self.kind!r} events need a non-negative shard index")
        if self.kind in ("delay", "net_delay") and self.seconds <= 0:
            raise ConfigurationError(f"{self.kind} events need seconds > 0, got {self.seconds!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "at_batch": self.at_batch,
            "shard": self.shard,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(**data)


class FaultPlan:
    """A deterministic schedule of faults, consumed by the execution layers.

    Args:
        events: the scheduled :class:`FaultEvent`\\ s (any order).
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"FaultPlan takes FaultEvent instances, got {type(event).__name__}"
                )
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_batch, e.kind, e.shard or 0))
        )
        self._fired: set = set()

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        batches: int,
        shards: int,
        kills: int = 1,
        delays: int = 0,
        ingest_errors: int = 0,
        trace_errors: int = 0,
        max_delay: float = 0.5,
    ) -> "FaultPlan":
        """Draw a reproducible schedule: same arguments, same plan.

        Batch indices are drawn without replacement across the whole plan so
        no two events collide on the same batch (keeps recovery assertions
        unambiguous); shard targets are drawn uniformly.
        """
        if batches < 1:
            raise ConfigurationError(f"batches must be >= 1, got {batches}")
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        count = kills + delays + ingest_errors + trace_errors
        if count > batches:
            raise ConfigurationError(
                f"cannot schedule {count} events across only {batches} batches"
            )
        rng = np.random.default_rng(seed)
        slots = rng.choice(batches, size=count, replace=False)
        events: List[FaultEvent] = []
        cursor = 0
        for _ in range(kills):
            events.append(
                FaultEvent("kill", int(slots[cursor]), shard=int(rng.integers(shards)))
            )
            cursor += 1
        for _ in range(delays):
            events.append(
                FaultEvent(
                    "delay",
                    int(slots[cursor]),
                    shard=int(rng.integers(shards)),
                    seconds=float(rng.uniform(0.01, max_delay)),
                )
            )
            cursor += 1
        for _ in range(ingest_errors):
            events.append(FaultEvent("ingest_error", int(slots[cursor]), message="injected ingest fault"))
            cursor += 1
        for _ in range(trace_errors):
            events.append(FaultEvent("trace_error", int(slots[cursor]), message="injected trace fault"))
            cursor += 1
        return cls(events)

    @classmethod
    def random_network(
        cls,
        seed: int,
        *,
        messages: int,
        switches: int,
        drops: int = 1,
        delays: int = 0,
        reorders: int = 0,
        max_delay_epochs: int = 3,
    ) -> "FaultPlan":
        """Draw a reproducible *network* schedule for the distributed transports.

        The analogue of :meth:`random` over the wire: ``messages`` is the
        per-switch message-index space, event targets are drawn uniformly
        over the ``switches``, and message indices are drawn without
        replacement across the whole plan so no two events collide on the
        same (conceptual) message slot.  ``net_delay`` events hold a message
        back 1..``max_delay_epochs`` delivery epochs.
        """
        if messages < 1:
            raise ConfigurationError(f"messages must be >= 1, got {messages}")
        if switches < 1:
            raise ConfigurationError(f"switches must be >= 1, got {switches}")
        if max_delay_epochs < 1:
            raise ConfigurationError(f"max_delay_epochs must be >= 1, got {max_delay_epochs}")
        count = drops + delays + reorders
        if count > messages:
            raise ConfigurationError(
                f"cannot schedule {count} events across only {messages} message slots"
            )
        rng = np.random.default_rng(seed)
        slots = rng.choice(messages, size=count, replace=False)
        events: List[FaultEvent] = []
        cursor = 0
        for _ in range(drops):
            events.append(
                FaultEvent("net_drop", int(slots[cursor]), shard=int(rng.integers(switches)))
            )
            cursor += 1
        for _ in range(delays):
            events.append(
                FaultEvent(
                    "net_delay",
                    int(slots[cursor]),
                    shard=int(rng.integers(switches)),
                    seconds=float(rng.integers(1, max_delay_epochs + 1)),
                )
            )
            cursor += 1
        for _ in range(reorders):
            events.append(
                FaultEvent("net_reorder", int(slots[cursor]), shard=int(rng.integers(switches)))
            )
            cursor += 1
        return cls(events)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The full schedule, sorted by batch index."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def events_at(
        self, batch_index: int, kind: str, shard: Optional[int] = None
    ) -> List[FaultEvent]:
        """Pop the not-yet-fired events of ``kind`` scheduled at ``batch_index``.

        ``shard`` restricts the match to events targeting that shard/switch
        (the per-switch transports consume one shared plan this way);
        ``None`` matches any target, the original behaviour.
        """
        matched: List[FaultEvent] = []
        for position, event in enumerate(self._events):
            if position in self._fired or event.kind != kind or event.at_batch != batch_index:
                continue
            if shard is not None and event.shard != shard:
                continue
            self._fired.add(position)
            matched.append(event)
        return matched

    def kills_at(self, batch_index: int) -> List[int]:
        """Shards whose workers must be SIGKILLed before this batch."""
        return [event.shard for event in self.events_at(batch_index, "kill")]

    def delays_at(self, batch_index: int) -> List[Tuple[int, float]]:
        """``(shard, seconds)`` delay injections scheduled before this batch."""
        return [(event.shard, event.seconds) for event in self.events_at(batch_index, "delay")]

    def wrap_batches(self, batches: Iterable, kind: str = "ingest_error") -> Iterator:
        """Pass a batch iterator through, raising the scheduled ``kind`` events.

        An event at index ``i`` raises *before* batch ``i`` is yielded, so a
        consumer sees exactly the ``i``-batch prefix - the deterministic
        "read error after N good batches" shape the recovery tests need.
        """
        index = 0
        for batch in batches:
            for event in self.events_at(index, kind):
                raise FaultInjectionError(f"{event.message} (batch {index})")
            yield batch
            index += 1

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the schedule (not the fired-state) as plain data."""
        return {"events": [event.to_dict() for event in self._events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls([FaultEvent.from_dict(entry) for entry in data.get("events", [])])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self._events)} events, {len(self._fired)} fired)"
