"""repro: a reproduction of "Constant Time Updates in Hierarchical Heavy Hitters" (SIGCOMM 2017).

The package is organised as:

* :mod:`repro.api` - the unified experiment API: declarative, JSON-able
  specs (:class:`ExperimentSpec` / :class:`AlgorithmSpec` /
  :class:`CounterSpec`), decorator-based plugin registries
  (:func:`register_algorithm`, :func:`register_counter`) and the batch-first
  :class:`Session` run protocol;
* :mod:`repro.core` - the paper's contribution: the RHHH algorithm, its
  configuration and the shared Output procedure;
* :mod:`repro.hh` - the heavy-hitter counter substrate (Space Saving and
  alternatives);
* :mod:`repro.hierarchy` - prefixes, one-dimensional hierarchies and the
  two-dimensional source x destination lattice;
* :mod:`repro.hhh` - baseline HHH algorithms (MST, Full/Partial Ancestry,
  sampled MST) and the exact offline solver used as ground truth;
* :mod:`repro.analysis` - the paper's Section 6 bounds as executable code;
* :mod:`repro.traffic` - synthetic backbone / DDoS traffic generators and
  trace IO;
* :mod:`repro.vswitch` - a simulated DPDK-style Open vSwitch datapath with
  HHH measurement integrated in the dataplane or in a separate VM;
* :mod:`repro.eval` - metrics, ground-truth comparison, experiment runner and
  per-figure regeneration entry points.

Quickstart (imperative)::

    from repro import RHHH, ipv4_two_dim_byte_hierarchy, named_workload

    hierarchy = ipv4_two_dim_byte_hierarchy()
    algorithm = RHHH(hierarchy, epsilon=0.01, delta=0.01, seed=7)
    workload = named_workload("chicago16", num_flows=20_000)
    for key in workload.keys_2d(200_000):
        algorithm.update(key)
    for candidate in algorithm.output(theta=0.05):
        print(candidate)

Quickstart (declarative, the :mod:`repro.api` way)::

    from repro import AlgorithmSpec, ExperimentSpec, Session

    spec = ExperimentSpec(
        algorithm=AlgorithmSpec(name="rhhh", epsilon=0.01, delta=0.01, seed=7),
        hierarchy="2d-bytes", workload="chicago16",
        packets=200_000, theta=0.05, batch_size=65_536,
    )
    for candidate in Session(spec).run().output:
        print(candidate)
"""

from repro.api import (
    AlgorithmSpec,
    CounterSpec,
    ExperimentSpec,
    Session,
    SessionResult,
    build_algorithm,
    build_counter,
    make_hierarchy,
    register_algorithm,
    register_counter,
    register_hierarchy,
    run_experiment,
)
from repro.core.base import HHHAlgorithm, HHHCandidate, HHHOutput
from repro.core.config import RHHHConfig, ten_rhhh_config
from repro.core.rhhh import RHHH
from repro.exceptions import (
    AlgorithmError,
    ConfigurationError,
    HierarchyError,
    ReproError,
    SwitchError,
    TraceFormatError,
)
from repro.hh import (
    CountMinSketch,
    CountSketch,
    ConservativeCountMin,
    ExactCounter,
    LossyCounting,
    MisraGries,
    SpaceSaving,
)
from repro.hhh import ExactHHH, FullAncestry, MST, PartialAncestry, SampledMST, make_algorithm
from repro.hierarchy import (
    OneDimHierarchy,
    Prefix,
    TwoDimHierarchy,
    ipv4_bit_hierarchy,
    ipv4_byte_hierarchy,
    ipv4_two_dim_byte_hierarchy,
    ipv6_byte_hierarchy,
)
from repro.traffic import BackboneTraceGenerator, DDoSScenario, Packet, ZipfFlowGenerator, named_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified experiment API (repro.api)
    "ExperimentSpec",
    "AlgorithmSpec",
    "CounterSpec",
    "Session",
    "SessionResult",
    "run_experiment",
    "build_algorithm",
    "build_counter",
    "make_hierarchy",
    "register_algorithm",
    "register_counter",
    "register_hierarchy",
    # core
    "RHHH",
    "RHHHConfig",
    "ten_rhhh_config",
    "HHHAlgorithm",
    "HHHCandidate",
    "HHHOutput",
    # counters
    "SpaceSaving",
    "MisraGries",
    "LossyCounting",
    "CountMinSketch",
    "CountSketch",
    "ConservativeCountMin",
    "ExactCounter",
    # baselines
    "MST",
    "SampledMST",
    "FullAncestry",
    "PartialAncestry",
    "ExactHHH",
    "make_algorithm",
    # hierarchies
    "Prefix",
    "OneDimHierarchy",
    "TwoDimHierarchy",
    "ipv4_byte_hierarchy",
    "ipv4_bit_hierarchy",
    "ipv6_byte_hierarchy",
    "ipv4_two_dim_byte_hierarchy",
    # traffic
    "Packet",
    "ZipfFlowGenerator",
    "BackboneTraceGenerator",
    "DDoSScenario",
    "named_workload",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "HierarchyError",
    "AlgorithmError",
    "TraceFormatError",
    "SwitchError",
]
