"""Analytical results of the paper's Section 6, as executable code.

This sub-package turns the paper's theorems into functions the library and the
benchmarks use directly:

* :func:`~repro.analysis.bounds.z_value` - normal quantiles (``Z_alpha``);
* :func:`~repro.analysis.bounds.psi` - the convergence bound
  ``psi = Z_{1-delta_s/2} * V / epsilon_s^2`` (Theorem 6.3);
* :func:`~repro.analysis.bounds.sample_error` - ``epsilon_s(N)`` of
  Corollary 6.4;
* :func:`~repro.analysis.bounds.coverage_correction` - the ``2 Z sqrt(NV)``
  additive term of Algorithm 1 line 13;
* :func:`~repro.analysis.bounds.oversample_adjusted_counters` - the counter
  inflation of Corollary 6.5 (e.g. 1000 -> 1001 Space Saving counters);
* :mod:`~repro.analysis.poisson` - Poisson confidence intervals
  (Schwertman & Martinez 1994) used in the proofs of Section 6.
"""

from repro.analysis.bounds import (
    z_value,
    psi,
    sample_error,
    coverage_correction,
    oversample_adjusted_counters,
    required_v_for_interval,
    space_complexity_counters,
)
from repro.analysis.poisson import poisson_confidence_interval, poisson_tail_bound

__all__ = [
    "z_value",
    "psi",
    "sample_error",
    "coverage_correction",
    "oversample_adjusted_counters",
    "required_v_for_interval",
    "space_complexity_counters",
    "poisson_confidence_interval",
    "poisson_tail_bound",
]
