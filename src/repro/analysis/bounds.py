"""Convergence and error bounds from Section 6 of the paper."""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.exceptions import ConfigurationError


def z_value(confidence: float) -> float:
    """Return ``Z_alpha``, the standard-normal quantile at ``confidence``.

    ``z_value(1 - delta)`` is the value ``z`` with ``Phi(z) = 1 - delta`` used
    throughout Section 6 of the paper (Lemma 6.2 onwards).

    Args:
        confidence: a probability strictly between 0 and 1.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    return float(norm.ppf(confidence))


def psi(delta_s: float, epsilon_s: float, v: float) -> float:
    """Convergence bound ``psi = Z_{1 - delta_s/2} * V * epsilon_s^{-2}`` (Theorem 6.3).

    Once the stream length exceeds ``psi``, the sampling error of every lattice
    node is below ``epsilon_s * N`` with probability at least ``1 - delta_s``.

    Args:
        delta_s: sampling confidence parameter.
        epsilon_s: sampling error parameter.
        v: the performance parameter ``V`` (``V >= H``).
    """
    if not 0.0 < delta_s < 1.0:
        raise ConfigurationError(f"delta_s must be in (0, 1), got {delta_s}")
    if not 0.0 < epsilon_s < 1.0:
        raise ConfigurationError(f"epsilon_s must be in (0, 1), got {epsilon_s}")
    if v <= 0:
        raise ConfigurationError(f"V must be positive, got {v}")
    return z_value(1.0 - delta_s / 2.0) * v / (epsilon_s * epsilon_s)


def sample_error(n: int, v: float, delta_s: float) -> float:
    """Actual sampling error ``epsilon_s(N)`` after ``n`` packets (Corollary 6.4).

    ``epsilon_s(N) = sqrt(Z_{1 - delta_s/2} * V / N)``; it shrinks as the
    stream grows, crossing the configured ``epsilon_s`` exactly at ``N = psi``.

    Args:
        n: number of packets processed so far.
        v: the performance parameter ``V``.
        delta_s: sampling confidence parameter.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if v <= 0:
        raise ConfigurationError(f"V must be positive, got {v}")
    return math.sqrt(z_value(1.0 - delta_s / 2.0) * v / n)


def coverage_correction(n: int, v: float, delta: float) -> float:
    """The additive term ``2 * Z_{1-delta} * sqrt(N * V)`` of Algorithm 1, line 13.

    Added to every conditioned-frequency estimate so the estimate remains
    probabilistically conservative despite the per-packet sampling
    (Theorems 6.11 and 6.15).

    Args:
        n: number of packets processed so far.
        v: the performance parameter ``V``.
        delta: overall confidence parameter.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if v <= 0:
        raise ConfigurationError(f"V must be positive, got {v}")
    if n == 0:
        return 0.0
    return 2.0 * z_value(1.0 - delta) * math.sqrt(n * v)


def oversample_adjusted_counters(epsilon_a: float, epsilon_s: float) -> int:
    """Counter budget after the over-sample correction of Corollary 6.5.

    A lattice node may receive up to ``(1 + epsilon_s) N / V`` updates instead
    of ``N / V``; configuring the counter algorithm for
    ``epsilon_a' = epsilon_a / (1 + epsilon_s)`` compensates.  For Space Saving
    this turns, e.g., 1000 counters into 1001, matching the example in the
    paper.

    Args:
        epsilon_a: counter-algorithm error target.
        epsilon_s: sampling error parameter.

    Returns:
        the number of counters, ``ceil((1 + epsilon_s) / epsilon_a)``.
    """
    if not 0.0 < epsilon_a < 1.0:
        raise ConfigurationError(f"epsilon_a must be in (0, 1), got {epsilon_a}")
    if not 0.0 <= epsilon_s < 1.0:
        raise ConfigurationError(f"epsilon_s must be in [0, 1), got {epsilon_s}")
    return int(math.ceil((1.0 + epsilon_s) / epsilon_a))


def required_v_for_interval(n: int, epsilon_s: float, delta_s: float) -> float:
    """Largest ``V`` for which a measurement interval of ``n`` packets still converges.

    Inverts ``psi``: the paper notes (Section 6.3) that when the measurement
    interval is known in advance, ``V`` can be chosen as large as possible
    while keeping ``psi <= n``, trading convergence slack for speed.

    Args:
        n: measurement interval length in packets.
        epsilon_s: sampling error parameter.
        delta_s: sampling confidence parameter.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    z = z_value(1.0 - delta_s / 2.0)
    return n * epsilon_s * epsilon_s / z


def space_complexity_counters(h: int, epsilon_a: float) -> int:
    """Total flow-table entries, ``H / epsilon_a`` (Theorem 6.19).

    Args:
        h: hierarchy size ``H``.
        epsilon_a: per-node counter error target.
    """
    if h <= 0:
        raise ConfigurationError(f"H must be positive, got {h}")
    if not 0.0 < epsilon_a < 1.0:
        raise ConfigurationError(f"epsilon_a must be in (0, 1), got {epsilon_a}")
    return h * int(math.ceil(1.0 / epsilon_a))
