"""Poisson confidence intervals.

Section 6 of the paper models the per-node update counts as a Poisson
approximation of the balls-and-bins process and builds confidence intervals
with the normal approximation of Schwertman & Martinez (1994), quoted as
Lemma 6.2.  These helpers expose both that approximation and the exact
(gamma-quantile) interval for comparison in tests.
"""

from __future__ import annotations

import math
from typing import Tuple

from scipy.stats import chi2

from repro.analysis.bounds import z_value
from repro.exceptions import ConfigurationError


def poisson_confidence_interval(mean: float, delta: float, *, exact: bool = False) -> Tuple[float, float]:
    """Two-sided ``1 - delta`` confidence interval for a Poisson variable.

    Args:
        mean: the Poisson mean ``E[X]``.
        delta: allowed two-sided failure probability.
        exact: when True, use the exact chi-square (Garwood) interval instead
            of the normal approximation of Lemma 6.2.

    Returns:
        ``(low, high)`` such that ``P(low <= X <= high) >= 1 - delta``
        (approximately, for the normal approximation).
    """
    if mean < 0:
        raise ConfigurationError(f"mean must be non-negative, got {mean}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    if exact:
        low = 0.0 if mean == 0 else float(chi2.ppf(delta / 2.0, 2.0 * mean) / 2.0)
        high = float(chi2.ppf(1.0 - delta / 2.0, 2.0 * mean + 2.0) / 2.0)
        return (low, high)
    z = z_value(1.0 - delta / 2.0)
    spread = z * math.sqrt(mean)
    return (max(0.0, mean - spread), mean + spread)


def poisson_tail_bound(mean: float, delta: float) -> float:
    """Deviation ``t`` with ``P(|X - E[X]| >= t) <= delta`` for Poisson ``X`` (Lemma 6.2).

    Args:
        mean: the Poisson mean.
        delta: allowed failure probability.
    """
    if mean < 0:
        raise ConfigurationError(f"mean must be non-negative, got {mean}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return z_value(1.0 - delta) * math.sqrt(mean)
