"""The unified experiment API: declarative specs, plugin registries, Sessions.

This package is the public construction-and-run surface of the reproduction.
Three layers compose:

1. **Specs** (:mod:`repro.api.specs`) - :class:`CounterSpec`,
   :class:`AlgorithmSpec` and :class:`ExperimentSpec` are validated, frozen,
   JSON-round-trippable descriptions of what to run.
2. **Registries** (:mod:`repro.api.registry`) - decorator-based plugin tables
   (:func:`register_algorithm`, :func:`register_counter`,
   :func:`register_hierarchy`) plus the builders (:func:`build_algorithm`,
   :func:`build_counter`, :func:`make_hierarchy`) that turn specs into live
   objects.
3. **Sessions** (:mod:`repro.api.session`) - the batch-first run protocol:
   one object owns the traffic source, the per-packet/batch feed loop, the
   progress and measurement hooks, and the final ``output(theta)``.

The memory-budget counter chooser (:mod:`repro.api.memory`) backs
``CounterSpec(auto=True, memory_bytes=...)``: it picks Space Saving versus a
sketch automatically from the deployment's memory budget.
"""

from repro.api.memory import (
    AUTO_CANDIDATES,
    choose_counter_backend,
    estimate_counter_memory,
)
from repro.api.registry import (
    algorithm_names,
    build_algorithm,
    build_counter,
    counter_names,
    hierarchy_names,
    make_hierarchy,
    register_algorithm,
    register_counter,
    register_hierarchy,
    unregister_algorithm,
    unregister_counter,
)
from repro.api.session import Session, SessionResult, run_experiment
from repro.api.specs import (
    DEFAULT_MIN_EPSILON,
    AlgorithmSpec,
    CounterSpec,
    DistribSpec,
    ExperimentSpec,
)

__all__ = [
    # specs
    "AlgorithmSpec",
    "CounterSpec",
    "DistribSpec",
    "ExperimentSpec",
    "DEFAULT_MIN_EPSILON",
    # registries
    "register_algorithm",
    "register_counter",
    "register_hierarchy",
    "unregister_algorithm",
    "unregister_counter",
    "build_algorithm",
    "build_counter",
    "make_hierarchy",
    "algorithm_names",
    "counter_names",
    "hierarchy_names",
    # sessions
    "Session",
    "SessionResult",
    "run_experiment",
    # memory-budget chooser
    "estimate_counter_memory",
    "choose_counter_backend",
    "AUTO_CANDIDATES",
]
