"""Decorator-based plugin registries for algorithms, counters and hierarchies.

These replace the positional-tuple factory dicts that used to live in
``repro.hhh.registry`` and ``repro.hh.factory``: a registered factory takes
arbitrary *typed* keyword arguments (``v``, ``updates_per_packet``,
``counter=CounterSpec(...)``, sketch ``width``/``depth``, ``seed``, ...)
instead of being locked to a fixed positional signature, and third parties
extend the line-up with a decorator::

    from repro.api import register_algorithm, register_counter

    @register_counter("my_counter")
    def _build(*, epsilon, capacity=None):
        return MyCounter(epsilon=epsilon, capacity=capacity)

    @register_algorithm("my_hhh")
    def _build(hierarchy, *, epsilon, delta, seed=None, counter=None):
        return MyHHH(hierarchy, epsilon=epsilon, ...)

Construction goes through :func:`build_algorithm` / :func:`build_counter`,
which accept either a spec (:class:`~repro.api.specs.AlgorithmSpec` /
:class:`~repro.api.specs.CounterSpec`) or a plain name.  The legacy
``repro.hhh.registry.ALGORITHM_REGISTRY`` and ``repro.hh.factory.make_counter``
surfaces remain as deprecation shims over this module.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Union

from repro.api.specs import AlgorithmSpec, CounterSpec
from repro.core.base import HHHAlgorithm
from repro.core.rhhh import RHHH
from repro.exceptions import ConfigurationError
from repro.hh.array_space_saving import ArraySpaceSaving
from repro.hh.base import CounterAlgorithm
from repro.hh.conservative_update import ConservativeCountMin
from repro.hh.count_min import CountMinSketch
from repro.hh.count_sketch import CountSketch
from repro.hh.exact_counter import ExactCounter
from repro.hh.lossy_counting import LossyCounting
from repro.hh.misra_gries import MisraGries
from repro.hh.space_saving import SpaceSaving
from repro.hhh.ancestry import FullAncestry, PartialAncestry
from repro.hhh.exact import ExactHHH
from repro.hhh.mst import MST
from repro.hhh.sampled_mst import SampledMST
from repro.hierarchy.base import Hierarchy
from repro.hierarchy.onedim import ipv4_bit_hierarchy, ipv4_byte_hierarchy
from repro.hierarchy.twodim import ipv4_two_dim_byte_hierarchy

AlgorithmFactory = Callable[..., HHHAlgorithm]
CounterFactory = Callable[..., CounterAlgorithm]
HierarchyFactory = Callable[[], Hierarchy]

_ALGORITHMS: Dict[str, AlgorithmFactory] = {}
_COUNTERS: Dict[str, CounterFactory] = {}
_HIERARCHIES: Dict[str, HierarchyFactory] = {}


def _register(table: Dict[str, Callable], kind: str, name: str, replace: bool) -> Callable:
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"{kind} name must be a non-empty string, got {name!r}")

    def decorator(factory: Callable) -> Callable:
        if name in table and not replace:
            raise ConfigurationError(
                f"{kind} {name!r} is already registered; pass replace=True to override"
            )
        table[name] = factory
        return factory

    return decorator


def register_algorithm(name: str, *, replace: bool = False) -> Callable[[AlgorithmFactory], AlgorithmFactory]:
    """Register ``factory(hierarchy, **typed_kwargs) -> HHHAlgorithm`` under ``name``."""
    return _register(_ALGORITHMS, "algorithm", name, replace)


def register_counter(name: str, *, replace: bool = False) -> Callable[[CounterFactory], CounterFactory]:
    """Register ``factory(**typed_kwargs) -> CounterAlgorithm`` under ``name``."""
    return _register(_COUNTERS, "counter", name, replace)


def register_hierarchy(name: str, *, replace: bool = False) -> Callable[[HierarchyFactory], HierarchyFactory]:
    """Register a zero-argument hierarchy constructor under ``name``."""
    return _register(_HIERARCHIES, "hierarchy", name, replace)


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (no-op if absent); for plugins and tests."""
    _ALGORITHMS.pop(name, None)


def unregister_counter(name: str) -> None:
    """Remove a registered counter backend (no-op if absent); for plugins and tests."""
    _COUNTERS.pop(name, None)


def algorithm_names() -> List[str]:
    """Sorted names of every registered algorithm."""
    return sorted(_ALGORITHMS)


def counter_names() -> List[str]:
    """Sorted names of every registered counter backend."""
    return sorted(_COUNTERS)


def hierarchy_names() -> List[str]:
    """Sorted names of every registered hierarchy."""
    return sorted(_HIERARCHIES)


def _lookup(table: Dict[str, Callable], kind: str, name: str) -> Callable:
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table))
        raise ConfigurationError(f"unknown {kind} {name!r}; known: {known}") from None


def _call_factory(kind: str, name: str, factory: Callable, *args: Any, **kwargs: Any):
    try:
        return factory(*args, **kwargs)
    except TypeError as exc:
        if "argument" in str(exc):
            raise ConfigurationError(f"{kind} {name!r} rejected its parameters: {exc}") from None
        raise


def make_hierarchy(name: str) -> Hierarchy:
    """Instantiate the registered hierarchy called ``name``."""
    return _lookup(_HIERARCHIES, "hierarchy", name)()


def build_counter(
    spec: Union[CounterSpec, str],
    *,
    epsilon: Optional[float] = None,
) -> CounterAlgorithm:
    """Instantiate the counter backend described by ``spec``.

    Args:
        spec: a :class:`~repro.api.specs.CounterSpec` or a bare backend name.
        epsilon: default error target used when the spec does not pin one
            (this is how an owning algorithm passes down its per-counter
            epsilon, over-sample correction included).

    Raises:
        ConfigurationError: unknown backend, unresolvable epsilon, or
            parameters the backend factory does not accept.
    """
    if isinstance(spec, str):
        spec = CounterSpec(name=spec)
    resolved = spec.resolve(default_epsilon=epsilon)
    factory = _lookup(_COUNTERS, "counter", resolved.name)
    kwargs: Dict[str, Any] = dict(resolved.options)
    for field_name in ("epsilon", "delta", "capacity", "width", "depth", "track", "seed"):
        value = getattr(resolved, field_name)
        if value is not None:
            kwargs[field_name] = value
    return _call_factory("counter", resolved.name, factory, **kwargs)


def build_algorithm(
    spec: Union[AlgorithmSpec, str],
    hierarchy: Hierarchy,
    **overrides: Any,
) -> HHHAlgorithm:
    """Instantiate the HHH algorithm described by ``spec`` on ``hierarchy``.

    Args:
        spec: an :class:`~repro.api.specs.AlgorithmSpec` or a bare name.
        hierarchy: the hierarchical domain to run on.
        **overrides: spec-field overrides (``epsilon=...``, ``seed=...``,
            ``counter=CounterSpec(...)``, ...) applied before building.

    Raises:
        ConfigurationError: unknown algorithm, or spec parameters the
            algorithm factory does not accept (e.g. ``v`` on a deterministic
            baseline).
    """
    if isinstance(spec, str):
        spec = AlgorithmSpec(name=spec, **overrides)
    elif overrides:
        spec = dataclasses.replace(spec, **overrides)
    factory = _lookup(_ALGORITHMS, "algorithm", spec.name)
    kwargs: Dict[str, Any] = dict(spec.options)
    kwargs["epsilon"] = spec.epsilon
    kwargs["delta"] = spec.delta
    kwargs["seed"] = spec.seed
    v = spec.resolved_v(hierarchy.size)
    if v is not None:
        kwargs["v"] = v
    if spec.updates_per_packet != 1:
        kwargs["updates_per_packet"] = spec.updates_per_packet
    if spec.counter is not None:
        kwargs["counter"] = spec.counter
    return _call_factory("algorithm", spec.name, factory, hierarchy, **kwargs)


# --------------------------------------------------------------------------- #
# builtin counter backends
# --------------------------------------------------------------------------- #
# Factories pass a parameter through only when the spec pinned it, so the
# class defaults (sketch seeds, track limits) keep applying and spec-built
# counters are bit-identical to directly constructed ones.


def _pruned(**kwargs: Any) -> Dict[str, Any]:
    return {key: value for key, value in kwargs.items() if value is not None}


@register_counter("space_saving")
def _build_space_saving(*, epsilon: Optional[float] = None, capacity: Optional[int] = None) -> CounterAlgorithm:
    return SpaceSaving(capacity=capacity, epsilon=epsilon)


@register_counter("array_space_saving")
def _build_array_space_saving(
    *, epsilon: Optional[float] = None, capacity: Optional[int] = None
) -> CounterAlgorithm:
    return ArraySpaceSaving(capacity=capacity, epsilon=epsilon)


@register_counter("misra_gries")
def _build_misra_gries(*, epsilon: Optional[float] = None, capacity: Optional[int] = None) -> CounterAlgorithm:
    return MisraGries(capacity=capacity, epsilon=epsilon)


@register_counter("lossy_counting")
def _build_lossy_counting(*, epsilon: float) -> CounterAlgorithm:
    return LossyCounting(epsilon=epsilon)


@register_counter("count_min")
def _build_count_min(
    *,
    epsilon: float,
    delta: Optional[float] = None,
    width: Optional[int] = None,
    depth: Optional[int] = None,
    track: Optional[int] = None,
    seed: Optional[int] = None,
) -> CounterAlgorithm:
    return CountMinSketch(
        epsilon, **_pruned(delta=delta, width=width, depth=depth, track=track, seed=seed)
    )


@register_counter("count_sketch")
def _build_count_sketch(
    *,
    epsilon: float,
    delta: Optional[float] = None,
    width: Optional[int] = None,
    depth: Optional[int] = None,
    track: Optional[int] = None,
    seed: Optional[int] = None,
) -> CounterAlgorithm:
    return CountSketch(
        epsilon, **_pruned(delta=delta, width=width, depth=depth, track=track, seed=seed)
    )


@register_counter("conservative_count_min")
def _build_conservative(
    *,
    epsilon: float,
    delta: Optional[float] = None,
    width: Optional[int] = None,
    depth: Optional[int] = None,
    track: Optional[int] = None,
    seed: Optional[int] = None,
) -> CounterAlgorithm:
    return ConservativeCountMin(
        epsilon, **_pruned(delta=delta, width=width, depth=depth, track=track, seed=seed)
    )


@register_counter("exact")
def _build_exact_counter(*, epsilon: Optional[float] = None) -> CounterAlgorithm:
    del epsilon  # the exact counter has no accuracy knob
    return ExactCounter()


# --------------------------------------------------------------------------- #
# builtin algorithms
# --------------------------------------------------------------------------- #
# Deterministic baselines accept (and deliberately ignore) delta/seed for
# line-up interchangeability, exactly like the legacy positional registry did;
# parameters they genuinely cannot honour (e.g. v) are rejected with a
# ConfigurationError by build_algorithm.


@register_algorithm("rhhh")
def _build_rhhh(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
    v: Optional[int] = None,
    counter: Optional[CounterSpec] = None,
    updates_per_packet: int = 1,
) -> HHHAlgorithm:
    return RHHH(
        hierarchy,
        epsilon=epsilon,
        delta=delta,
        v=v,
        seed=seed,
        counter=counter if counter is not None else "space_saving",
        updates_per_packet=updates_per_packet,
    )


@register_algorithm("10-rhhh")
def _build_10_rhhh(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
    v: Optional[int] = None,
    counter: Optional[CounterSpec] = None,
    updates_per_packet: int = 1,
) -> HHHAlgorithm:
    return RHHH(
        hierarchy,
        epsilon=epsilon,
        delta=delta,
        v=v if v is not None else 10 * hierarchy.size,
        seed=seed,
        counter=counter if counter is not None else "space_saving",
        updates_per_packet=updates_per_packet,
    )


@register_algorithm("mst")
def _build_mst(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
    counter: Optional[CounterSpec] = None,
) -> HHHAlgorithm:
    del delta, seed  # deterministic: accepted for line-up parity, unused
    return MST(hierarchy, epsilon=epsilon, counter=counter if counter is not None else "space_saving")


@register_algorithm("sampled_mst")
def _build_sampled_mst(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
    counter: Optional[CounterSpec] = None,
    sampling_probability: Optional[float] = None,
) -> HHHAlgorithm:
    return SampledMST(
        hierarchy,
        epsilon=epsilon,
        delta=delta,
        seed=seed,
        counter=counter if counter is not None else "space_saving",
        sampling_probability=sampling_probability,
    )


@register_algorithm("full_ancestry")
def _build_full_ancestry(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
) -> HHHAlgorithm:
    del delta, seed
    return FullAncestry(hierarchy, epsilon=epsilon)


@register_algorithm("partial_ancestry")
def _build_partial_ancestry(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
) -> HHHAlgorithm:
    del delta, seed
    return PartialAncestry(hierarchy, epsilon=epsilon)


@register_algorithm("exact")
def _build_exact(
    hierarchy: Hierarchy,
    *,
    epsilon: float = 0.001,
    delta: float = 0.001,
    seed: Optional[int] = None,
) -> HHHAlgorithm:
    del epsilon, delta, seed
    return ExactHHH(hierarchy)


# --------------------------------------------------------------------------- #
# builtin hierarchies
# --------------------------------------------------------------------------- #

register_hierarchy("1d-bytes")(ipv4_byte_hierarchy)
register_hierarchy("1d-bits")(ipv4_bit_hierarchy)
register_hierarchy("2d-bytes")(ipv4_two_dim_byte_hierarchy)
