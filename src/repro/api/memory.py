"""Memory-budget-driven counter-backend selection.

The ROADMAP's "multi-backend counters per deployment size" item: given a
memory budget in bytes and an accuracy target, pick the counter backend that
satisfies the target within the budget.  The estimates model the *actual*
CPython/numpy representations used by :mod:`repro.hh`:

* Space Saving and Misra-Gries keep one Python dict entry (plus linked-list
  bucket overhead for Space Saving) per counter - compact in counter count
  (``ceil(1/epsilon)``) but expensive per entry;
* the sketches keep a dense numpy table (8 bytes per cell) plus a bounded
  tracked-keys dictionary for heavy-hitter enumeration.  The table is cheap,
  but the default tracked set (``2 * ceil(1/epsilon)`` keys) is dict-priced,
  so a sketch only undercuts Space Saving when the caller bounds ``track``
  explicitly (e.g. "I only ever report the top 50").

Selection prefers Space Saving (the paper's counter, deterministic
guarantees) whenever it fits; otherwise the cheapest fitting sketch wins.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.hh.count_min import CountMinSketch
from repro.hh.count_sketch import CountSketch

#: Estimated bytes per Space Saving counter: one ``_where`` dict entry, the
#: per-key error slot inside its bucket and an amortized share of the bucket
#: objects themselves.
SPACE_SAVING_BYTES_PER_COUNTER = 220

#: Estimated bytes per array-backed Space Saving counter: three int64 array
#: cells (count, error, stamp), one key-list slot, and one ``key -> slot``
#: dict entry - no linked-bucket objects, hence cheaper than the classic
#: structure.
ARRAY_SPACE_SAVING_BYTES_PER_COUNTER = 150

#: Estimated bytes per entry of a plain ``{key: value}`` counter table
#: (Misra-Gries, Lossy Counting, and the sketches' tracked-keys dict).
DICT_ENTRY_BYTES = 140

#: Bytes per sketch table cell (``int64``).
SKETCH_CELL_BYTES = 8

#: Backends the automatic chooser considers, in preference order.
AUTO_CANDIDATES: Tuple[str, ...] = (
    "space_saving",
    "array_space_saving",
    "count_min",
    "count_sketch",
)

#: Sketch backends the churn-aware chooser prefers under eviction storms,
#: cheapest-table first.
_STORM_CANDIDATES: Tuple[str, ...] = ("count_min", "count_sketch")


def _tracked_keys(epsilon: float, track: Optional[int]) -> int:
    return track if track is not None else 2 * int(math.ceil(1.0 / epsilon))


def estimate_counter_memory(
    name: str,
    *,
    epsilon: float,
    delta: float = 0.01,
    track: Optional[int] = None,
    capacity: Optional[int] = None,
) -> int:
    """Estimate the resident memory (bytes) of counter backend ``name``.

    Args:
        name: a builtin counter-backend name.
        epsilon: per-counter relative error target.
        delta: failure probability (sketch depth).
        track: tracked-keys bound for the sketches (``None`` = their default).
        capacity: explicit counter count for the table-based backends
            (``None`` derives ``ceil(1/epsilon)``).

    Raises:
        ConfigurationError: for a backend without a memory model (``exact``
            grows without bound) or an unknown name.
    """
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    entries = capacity if capacity is not None else int(math.ceil(1.0 / epsilon))
    if name == "space_saving":
        return entries * SPACE_SAVING_BYTES_PER_COUNTER
    if name == "array_space_saving":
        return entries * ARRAY_SPACE_SAVING_BYTES_PER_COUNTER
    if name in ("misra_gries", "lossy_counting"):
        return entries * DICT_ENTRY_BYTES
    if name in ("count_min", "conservative_count_min"):
        # Geometry comes from the sketch class itself, so the estimate prices
        # exactly the table the constructor builds.
        table = (
            CountMinSketch.derived_depth(delta)
            * CountMinSketch.derived_width(epsilon)
            * SKETCH_CELL_BYTES
        )
        return table + _tracked_keys(epsilon, track) * DICT_ENTRY_BYTES
    if name == "count_sketch":
        # derived_depth includes the odd-depth bump CountSketch.__init__
        # applies, so an even ceil(ln 1/delta) cannot under-count the table
        # by one full row.
        table = (
            CountSketch.derived_depth(delta)
            * CountSketch.derived_width(epsilon)
            * SKETCH_CELL_BYTES
        )
        return table + _tracked_keys(epsilon, track) * DICT_ENTRY_BYTES
    if name == "exact":
        raise ConfigurationError("the 'exact' counter has no bounded memory footprint")
    raise ConfigurationError(f"no memory model for counter backend {name!r}")


def choose_counter_backend(
    memory_bytes: int,
    *,
    epsilon: float,
    delta: float = 0.01,
    track: Optional[int] = None,
    working_set: Optional[int] = None,
    candidates: Sequence[str] = AUTO_CANDIDATES,
) -> str:
    """Pick the counter backend that meets ``epsilon`` within ``memory_bytes``.

    Space Saving is preferred whenever it fits (it is the paper's counter and
    its guarantees are deterministic); the array-backed variant - same
    guarantees, compacter storage - is next when only it fits; otherwise the
    fitting candidate with the smallest estimated footprint wins.

    ``working_set`` makes the choice churn-aware: when the stream is expected
    to touch more distinct keys than the Space Saving capacity the budget
    affords (``ceil(1/epsilon)`` counters, or an explicit spec capacity),
    every miss on the full table forces per-event eviction work - the
    eviction-storm regime where the scalar floor lives.  The sketches have no
    eviction order to preserve and keep the batch path fully vectorized, so a
    fitting sketch is preferred there, cheapest table first.

    Raises:
        ConfigurationError: when no candidate fits - the message names the
            smallest budget that would, so callers can either raise the
            budget or relax ``epsilon``.
    """
    if memory_bytes < 1:
        raise ConfigurationError(f"memory_bytes must be >= 1, got {memory_bytes}")
    if working_set is not None and working_set < 1:
        raise ConfigurationError(f"working_set must be >= 1, got {working_set}")
    estimates: Dict[str, int] = {
        name: estimate_counter_memory(name, epsilon=epsilon, delta=delta, track=track)
        for name in candidates
    }
    fitting = {name: size for name, size in estimates.items() if size <= memory_bytes}
    if not fitting:
        cheapest_name, cheapest_size = min(estimates.items(), key=lambda item: item[1])
        raise ConfigurationError(
            f"no counter backend reaches epsilon={epsilon} within {memory_bytes} bytes; "
            f"the cheapest ({cheapest_name}) needs {cheapest_size} bytes - raise the "
            f"budget or relax epsilon"
        )
    if working_set is not None and working_set > int(math.ceil(1.0 / epsilon)):
        for preferred in _STORM_CANDIDATES:
            if preferred in fitting:
                return preferred
    for preferred in ("space_saving", "array_space_saving"):
        if preferred in fitting:
            return preferred
    return min(fitting.items(), key=lambda item: item[1])[0]
