"""The batch-first run protocol: one object owns the stream → output loop.

A :class:`Session` ties together the pieces an experiment needs - hierarchy,
algorithm, traffic source, feed strategy - behind one uniform interface.  It
subsumes the bespoke driver loops that used to live in ``eval/runner.py``,
``eval/speed.py``, ``eval/figures.py`` and the CLI:

* **per-packet and batch paths**: ``batch_size=None`` on the spec drives the
  algorithm through per-packet ``update`` calls; a batch size feeds
  ``update_batch`` in exactly the chunks the manual loop would
  (``keys[i : i + batch_size]``), so a Session batch run is bit-identical to
  the legacy hand-written loop;
* **progress hooks**: called after every fed chunk with the processed count;
* **measurement hooks**: called at caller-chosen stream positions
  (checkpoints), which is how the quality experiments evaluate one stream at
  several lengths in a single pass;
* **timing**: :meth:`Session.run` reports wall-clock feed time, and
  :meth:`Session.measure_speed` wraps the Figure 5 speed measurement with the
  feed strategy the spec selects.

Example::

    from repro.api import AlgorithmSpec, CounterSpec, ExperimentSpec, Session

    spec = ExperimentSpec(
        algorithm=AlgorithmSpec(name="rhhh", epsilon=0.05, delta=0.1, seed=7,
                                counter=CounterSpec(name="space_saving")),
        hierarchy="2d-bytes", workload="chicago16",
        packets=200_000, theta=0.1, batch_size=65_536,
    )
    result = Session(spec).run()
    for candidate in result.output:
        print(candidate)
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.api.registry import build_algorithm, make_hierarchy
from repro.api.specs import ExperimentSpec
from repro.core.base import HHHAlgorithm, HHHOutput
from repro.core.checkpoint import (
    load_checkpoint,
    restore_algorithm,
    save_checkpoint,
    snapshot_algorithm,
)
from repro.core.ingest import RingBufferIngest, rechunk_batches
from repro.core.output import validate_theta
from repro.exceptions import CheckpointError, ConfigurationError, ConfigurationWarning
from repro.hierarchy.base import Hierarchy
from repro.traffic.caida_like import named_workload
from repro.traffic.trace_io import trace_key_array, trace_key_batches, trace_packet_count

#: Progress hook: ``hook(session, processed, total)`` after every fed chunk.
ProgressHook = Callable[["Session", int, int], None]

#: Measurement hook: ``hook(session, processed) -> record`` at each checkpoint;
#: non-None records are collected into :attr:`SessionResult.measurements`.
MeasurementHook = Callable[["Session", int], Any]

Keys = Union[Sequence, np.ndarray]

#: Chunk size at which the per-packet feed path fires its progress hooks;
#: the batch path fires at ``batch_size`` granularity instead.  Overridable
#: per session via ``Session(..., progress_chunk=...)``.
PER_PACKET_PROGRESS_CHUNK = 65_536


@dataclass
class SessionResult:
    """The outcome of one :meth:`Session.run`.

    Attributes:
        spec: the experiment spec that produced the result.
        output: the final ``output(theta)`` report.
        packets: packets fed.
        seconds: wall-clock time of the feed loop (hooks excluded from the
            algorithm's work but included in the wall clock).
        measurements: records returned by measurement hooks, in firing order.
    """

    spec: ExperimentSpec
    output: HHHOutput
    packets: int
    seconds: float
    measurements: List[Any] = field(default_factory=list)

    @property
    def packets_per_second(self) -> float:
        """Feed throughput in packets per second."""
        return self.packets / self.seconds if self.seconds > 0 else float("inf")


class Session:
    """Owns one experiment: hierarchy, algorithm, traffic source, feed loop.

    Args:
        spec: the declarative experiment description.
        hierarchy: explicit hierarchy instance (defaults to building
            ``spec.hierarchy`` from the registry).
        algorithm: explicit algorithm instance (defaults to building
            ``spec.algorithm`` on the hierarchy) - the escape hatch for
            algorithms constructed outside the registry.
        keys: explicit key stream; when given, the named workload of the spec
            is never materialised and the stream is used verbatim (this is how
            the evaluation harness feeds every algorithm the same packets).
        progress_chunk: progress-hook granularity of the per-packet feed path
            (default :data:`PER_PACKET_PROGRESS_CHUNK`); batch runs fire at
            ``batch_size`` granularity regardless.
        checkpoint_every: override of ``spec.checkpoint_every`` - write a
            durable session checkpoint after roughly this many fed packets
            (the write lands on the next chunk boundary at or past the mark).
        checkpoint_path: override of ``spec.checkpoint_path`` - where the
            periodic checkpoint file lives; each write atomically replaces
            the previous one.
        fault_plan: optional :class:`~repro.core.faults.FaultPlan` threaded
            into the sharded worker pool (``kill``/``delay`` events), the
            trace reader (``trace_error``) and the ingest ring
            (``ingest_error``) - the deterministic fault-injection hook the
            recovery tests drive.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        hierarchy: Optional[Hierarchy] = None,
        algorithm: Optional[HHHAlgorithm] = None,
        keys: Optional[Keys] = None,
        progress_chunk: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        fault_plan=None,
    ) -> None:
        if not isinstance(spec, ExperimentSpec):
            raise ConfigurationError(f"spec must be an ExperimentSpec, got {type(spec).__name__}")
        if progress_chunk is not None and progress_chunk < 1:
            raise ConfigurationError(f"progress_chunk must be >= 1, got {progress_chunk}")
        self._spec = spec
        self._hierarchy = hierarchy if hierarchy is not None else make_hierarchy(spec.hierarchy)
        if algorithm is not None:
            self._algorithm = algorithm
        elif spec.distrib is not None:
            # Late import: the distrib package builds its switch sessions
            # through this module.
            from repro.distrib.cluster import DistributedCluster

            self._algorithm = DistributedCluster(
                spec, hierarchy=self._hierarchy, fault_plan=fault_plan
            )
        elif spec.shards is not None and spec.shards > 1:
            # Late import: repro.core.shard builds algorithms through this
            # package's registry.
            from repro.core.shard import ShardedHHH
            from repro.core.supervise import SupervisorPolicy

            if spec.batch_size is None and spec.shard_parallel:
                warnings.warn(
                    "shards > 1 without batch_size feeds the worker pool one "
                    "packet (one pipe round-trip) at a time - far slower than "
                    "an unsharded run; set batch_size to use the parallel "
                    "batch engine, or shard_parallel=False for in-process "
                    "shards",
                    ConfigurationWarning,
                    stacklevel=2,
                )

            self._algorithm = ShardedHHH(
                spec.algorithm,
                # Prefer the registry name (workers rebuild it by name, the
                # spawn-safe route); an explicitly passed hierarchy instance
                # is shipped to the workers by pickle.
                hierarchy if hierarchy is not None else spec.hierarchy,
                spec.shards,
                parallel=spec.shard_parallel,
                supervisor=SupervisorPolicy(
                    policy=spec.shard_policy, timeout=float(spec.shard_timeout)
                ),
                fault_plan=fault_plan,
            )
        else:
            self._algorithm = build_algorithm(spec.algorithm, self._hierarchy)
        self._keys = keys
        self._progress_chunk = (
            progress_chunk if progress_chunk is not None else PER_PACKET_PROGRESS_CHUNK
        )
        self._progress_hooks: List[ProgressHook] = []
        self._measurement_hooks: List[MeasurementHook] = []
        self._fault_plan = fault_plan
        self._checkpoint_every = (
            checkpoint_every if checkpoint_every is not None else spec.checkpoint_every
        )
        self._checkpoint_path = (
            str(checkpoint_path) if checkpoint_path is not None else spec.checkpoint_path
        )
        if self._checkpoint_every is not None:
            if (
                isinstance(self._checkpoint_every, bool)
                or not isinstance(self._checkpoint_every, int)
                or self._checkpoint_every < 1
            ):
                raise ConfigurationError(
                    f"checkpoint_every must be a positive int, got {self._checkpoint_every!r}"
                )
            if self._checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every needs a checkpoint_path to write to"
                )
        #: Packets fed through the run protocol so far (absolute stream
        #: position, including any packets skipped by a resume).
        self._stream_position = 0
        #: Stream position recorded by the checkpoint this session resumed
        #: from; 0 for fresh sessions.
        self._resume_position = 0
        self._next_checkpoint = (
            self._checkpoint_every if self._checkpoint_every is not None else None
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def spec(self) -> ExperimentSpec:
        """The experiment spec this session runs."""
        return self._spec

    @property
    def hierarchy(self) -> Hierarchy:
        """The hierarchical domain."""
        return self._hierarchy

    @property
    def algorithm(self) -> HHHAlgorithm:
        """The algorithm under test."""
        return self._algorithm

    @property
    def processed(self) -> int:
        """Packets the algorithm has seen so far."""
        return self._algorithm.total

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def add_progress_hook(self, hook: ProgressHook) -> "Session":
        """Register a per-chunk progress callback; returns ``self`` for chaining."""
        self._progress_hooks.append(hook)
        return self

    def add_measurement_hook(self, hook: MeasurementHook) -> "Session":
        """Register a checkpoint measurement callback; returns ``self`` for chaining."""
        self._measurement_hooks.append(hook)
        return self

    # ------------------------------------------------------------------ #
    # traffic source
    # ------------------------------------------------------------------ #

    def keys(self) -> Keys:
        """Materialise (and cache) the key stream this session feeds.

        Explicit ``keys`` passed to the constructor win; otherwise a
        ``spec.trace`` is loaded (key arrays for batch runs - zero-copy
        memmap views for single-chunk v2 traces - plain Python keys for the
        per-packet path), and failing both the spec's named workload is
        drawn.  Note that :meth:`run` on a batch-mode trace spec *streams*
        the trace instead of materialising it here.
        """
        if self._keys is None:
            if self._spec.trace is not None:
                self._keys = self._load_trace_keys()
            else:
                generator = named_workload(self._spec.workload, num_flows=self._spec.num_flows)
                count = self._spec.packets
                if self._spec.batch_size is not None:
                    if self._hierarchy.dimensions == 2:
                        self._keys = generator.key_array(count)
                    else:
                        # Source column of the generator's array emitter: the
                        # same stream (and RNG consumption) as keys_1d, without
                        # materialising a Python list first.
                        self._keys = np.ascontiguousarray(generator.key_array(count)[:, 0])
                else:
                    self._keys = (
                        generator.keys_2d(count)
                        if self._hierarchy.dimensions == 2
                        else generator.keys_1d(count)
                    )
        return self._keys

    def _load_trace_keys(self) -> Keys:
        """Materialise the spec's trace (capped at ``spec.packets``) as a key stream."""
        dimensions = self._hierarchy.dimensions
        arr = trace_key_array(
            self._spec.trace, dimensions=dimensions, limit=self._spec.packets
        )
        if self._spec.batch_size is not None:
            return arr
        # Per-packet path: plain Python keys, like the workload emitters.
        if dimensions == 2:
            return [tuple(row) for row in arr.tolist()]
        return arr.tolist()

    # ------------------------------------------------------------------ #
    # the feed loop
    # ------------------------------------------------------------------ #

    def feed(
        self,
        keys: Optional[Keys] = None,
        *,
        checkpoints: Sequence[int] = (),
        start: int = 0,
    ) -> List[Any]:
        """Drive the whole stream through the algorithm.

        Args:
            keys: stream override; defaults to :meth:`keys`.
            checkpoints: stream positions (packet counts) at which the
                measurement hooks fire.  The stream is cut at every
                checkpoint; batch chunking restarts after each cut, so a
                checkpoint that is not a multiple of the batch size changes
                chunk boundaries relative to an uncheckpointed run.  With no
                checkpoints the batch path is bit-identical to the manual
                ``keys[i : i + batch_size]`` loop.
            start: stream position to begin feeding from - ``keys[:start]``
                is assumed already applied (this is how a resumed session
                skips the prefix its checkpoint covers).

        Returns:
            the non-None records produced by the measurement hooks.
        """
        if keys is None:
            keys = self.keys()
        total = len(keys)
        if not 0 <= start <= total:
            raise ConfigurationError(f"start must lie in [0, {total}], got {start}")
        marks = sorted({int(c) for c in checkpoints})
        if marks and (marks[0] <= start or marks[-1] > total):
            raise ConfigurationError(
                f"checkpoints must lie in ({start}, {total}], got {marks[0]}..{marks[-1]}"
            )
        measurements: List[Any] = []
        marks_set = set(marks)
        cuts = marks + ([total] if not marks or marks[-1] != total else [])
        position = start
        for cut in cuts:
            self._feed_segment(keys, position, cut, total)
            position = cut
            if cut in marks_set:
                for hook in self._measurement_hooks:
                    record = hook(self, position)
                    if record is not None:
                        measurements.append(record)
        return measurements

    def _feed_segment(self, keys: Keys, start: int, stop: int, total: int) -> None:
        """Feed ``keys[start:stop]`` by draining :meth:`_segment_chunks`."""
        for _ in self._segment_chunks(keys, start, stop, total):
            pass

    def _segment_chunks(self, keys: Keys, start: int, stop: int, total: int) -> Iterator[int]:
        """Feed ``keys[start:stop]`` chunk by chunk, yielding after each chunk.

        Yields the absolute stream position after every fed chunk - the
        cadence :meth:`watch` counts in.  Both paths honor the documented
        progress contract - hooks fire after every fed chunk: at
        ``batch_size`` granularity on the batch path, and at
        ``progress_chunk`` granularity on the per-packet path (which used
        to fire only once per segment, starving progress consumers on long
        per-packet runs).
        """
        batch_size = self._spec.batch_size
        if batch_size is None:
            update = self._algorithm.update
            step = self._progress_chunk
            for chunk_start in range(start, stop, step):
                chunk_stop = min(chunk_start + step, stop)
                for key in HHHAlgorithm._iter_batch_keys(keys[chunk_start:chunk_stop]):
                    update(key)
                self._stream_position = chunk_stop
                self._fire_progress(chunk_stop, total)
                self._maybe_checkpoint()
                yield chunk_stop
            return
        update_batch = self._algorithm.update_batch
        for chunk_start in range(start, stop, batch_size):
            chunk_stop = min(chunk_start + batch_size, stop)
            update_batch(keys[chunk_start:chunk_stop])
            self._stream_position = chunk_stop
            self._fire_progress(chunk_stop, total)
            self._maybe_checkpoint()
            yield chunk_stop

    def _fire_progress(self, processed: int, total: int) -> None:
        for hook in self._progress_hooks:
            hook(self, min(processed, total), total)

    # ------------------------------------------------------------------ #
    # trace streaming
    # ------------------------------------------------------------------ #

    def feed_batches(self, batches: Iterable[Keys], *, total: Optional[int] = None) -> int:
        """Drive an iterable of key-array batches through ``update_batch`` inline.

        This is the inline reference the ingest parity gate compares the
        ring-buffered feed against: batches are applied strictly in iteration
        order, one ``update_batch`` call each, progress hooks firing after
        every batch.  Returns the number of packets fed.

        Args:
            batches: iterable of key arrays (``(n, 2)`` for two-dimensional
                hierarchies, 1-D otherwise); a
                :class:`~repro.core.ingest.RingBufferIngest` is itself such
                an iterable.
            total: stream length reported to progress hooks; defaults to the
                running fed count (useful when the iterable's length is
                unknown).
        """
        fed = 0
        for fed in self._batch_chunks(batches, total=total):
            pass
        return fed

    def _batch_chunks(self, batches: Iterable[Keys], *, total: Optional[int] = None) -> Iterator[int]:
        """The chunk generator under :meth:`feed_batches`: yields the running fed count."""
        fed = 0
        update_batch = self._algorithm.update_batch
        for batch in batches:
            n = len(batch)
            if n == 0:
                continue
            update_batch(batch)
            fed += n
            self._stream_position += n
            self._fire_progress(fed, total if total is not None else fed)
            self._maybe_checkpoint()
            yield fed

    def feed_trace(
        self,
        path: Optional[str] = None,
        *,
        ingest: Optional[int] = None,
        skip: Optional[int] = None,
    ) -> int:
        """Stream a serialized trace through the batch engine; returns packets fed.

        v2 columnar traces replay as zero-copy memmap views re-chunked to the
        spec's ``batch_size`` (batches never span trace chunks); v1 traces
        decode per record into the same batch shapes.  With an ingest depth
        (argument, or ``spec.ingest``) the reader runs on a producer thread
        overlapped with ``update_batch`` via a bounded ring buffer - the fed
        batch sequence, and therefore the final algorithm state, is
        bit-identical to the inline feed.

        Args:
            path: trace file; defaults to ``spec.trace``.
            ingest: ring depth override; ``None`` uses ``spec.ingest``
                (inline when that is also ``None``).
            skip: packets to drop from the front of the stream before
                feeding; defaults to the resume position of a session built
                by :meth:`resume` (0 for fresh sessions).  Periodic
                checkpoints always land on batch boundaries, so a resumed
                skip drops whole batches; a ``skip`` that would split a
                batch raises :class:`~repro.exceptions.CheckpointError`.

        Raises:
            ConfigurationError: when no trace path is available or the spec
                has no ``batch_size`` (per-packet trace runs go through
                :meth:`run`/:meth:`feed`, which materialise Python keys).
        """
        fed = 0
        for fed in self._trace_chunks(path, ingest=ingest, skip=skip):
            pass
        return fed

    def _trace_chunks(
        self,
        path: Optional[str] = None,
        *,
        ingest: Optional[int] = None,
        skip: Optional[int] = None,
    ) -> Iterator[int]:
        """The chunk generator under :meth:`feed_trace`: yields the running fed count."""
        if path is None:
            path = self._spec.trace
        if path is None:
            raise ConfigurationError("feed_trace needs a path (argument or spec.trace)")
        if self._spec.batch_size is None:
            raise ConfigurationError(
                "feed_trace streams through update_batch; set batch_size on the "
                "spec (per-packet trace runs use run()/feed(), which "
                "materialise the keys)"
            )
        if skip is None:
            skip = self._resume_position
        depth = ingest if ingest is not None else self._spec.ingest
        total = min(trace_packet_count(path), self._spec.packets)
        batches = rechunk_batches(
            trace_key_batches(
                path,
                dimensions=self._hierarchy.dimensions,
                limit=self._spec.packets,
                fault_plan=self._fault_plan,
            ),
            self._spec.batch_size,
        )
        if skip:
            batches = _skip_batches(batches, skip)
        if depth is None:
            yield from self._batch_chunks(batches, total=total)
            return
        with RingBufferIngest(batches, depth=depth, fault_plan=self._fault_plan) as ring:
            yield from self._batch_chunks(ring, total=total)

    # ------------------------------------------------------------------ #
    # checkpoint / resume
    # ------------------------------------------------------------------ #

    @property
    def stream_position(self) -> int:
        """Absolute stream position fed so far (includes a resume's skipped prefix)."""
        return self._stream_position

    @property
    def resume_position(self) -> int:
        """Stream position of the checkpoint this session resumed from (0 if fresh)."""
        return self._resume_position

    def checkpoint(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write a durable session checkpoint; returns the path written.

        The file is written atomically (temp file + rename) with a
        checksummed header, and captures everything a :meth:`resume` needs:
        the spec, the absolute stream position, and the algorithm's full
        runtime state (counters, totals and RNG states - per shard for the
        sharded engine).  The stream itself is *not* stored; resuming replays
        the same deterministic source from the recorded position.

        Args:
            path: target file; defaults to the session's configured
                ``checkpoint_path``.
        """
        target = path if path is not None else self._checkpoint_path
        if target is None:
            raise ConfigurationError(
                "checkpoint() needs a path (argument, checkpoint_path kwarg, "
                "or spec.checkpoint_path)"
            )
        payload = {
            "format": "session",
            "spec": self._spec.to_dict(),
            "position": int(self._stream_position),
            # copy_state=False: the snapshot is pickled by save_checkpoint
            # before the algorithm processes another packet.
            "algorithm": snapshot_algorithm(self._algorithm, copy_state=False),
        }
        return save_checkpoint(target, payload)

    def _maybe_checkpoint(self) -> None:
        """Write the periodic checkpoint when the stream position crosses the mark."""
        if self._next_checkpoint is None or self._stream_position < self._next_checkpoint:
            return
        self.checkpoint()
        self._next_checkpoint = self._stream_position + self._checkpoint_every

    @classmethod
    def resume(cls, path: Union[str, Path], **session_kwargs: Any) -> "Session":
        """Rebuild a session from a checkpoint file written by :meth:`checkpoint`.

        The spec is restored from the checkpoint, the algorithm is rebuilt
        and its runtime state restored bit-for-bit, and the stream position
        is remembered so :meth:`run`, :meth:`feed` and :meth:`feed_trace`
        skip the already-applied prefix.  Sessions whose stream came from an
        explicit ``keys=`` argument must pass the same keys again.

        Args:
            path: checkpoint file.
            **session_kwargs: forwarded to the constructor
              (``checkpoint_path`` defaults to ``path`` so periodic
              checkpointing keeps overwriting the same file).
        """
        payload = load_checkpoint(path)
        if payload.get("format") != "session":
            raise CheckpointError(
                f"{path} is not a session checkpoint "
                f"(format={payload.get('format')!r})"
            )
        spec = ExperimentSpec.from_dict(payload["spec"])
        session_kwargs.setdefault("checkpoint_path", str(path))
        session = cls(spec, **session_kwargs)
        restore_algorithm(session._algorithm, payload["algorithm"])
        position = int(payload.get("position", 0))
        session._stream_position = position
        session._resume_position = position
        if session._next_checkpoint is not None:
            session._next_checkpoint = position + session._checkpoint_every
        return session

    # ------------------------------------------------------------------ #
    # queries and runs
    # ------------------------------------------------------------------ #

    def output(self, theta: Optional[float] = None) -> HHHOutput:
        """Query the algorithm's HHH report (defaults to the spec's theta)."""
        theta = validate_theta(theta if theta is not None else self._spec.theta)
        return self._algorithm.output(theta)

    def _streams_trace(self) -> bool:
        """True when :meth:`run`/:meth:`watch` stream the trace instead of materialising keys."""
        return (
            self._spec.trace is not None
            and self._spec.batch_size is not None
            and self._keys is None
        )

    def _stream_chunks(self) -> Iterator[int]:
        """Feed the spec's stream chunk by chunk, yielding after every chunk.

        The single feed loop both :meth:`run` (drain, then query once) and
        :meth:`watch` (query on a chunk cadence) are built on: streamed-trace
        specs go through the trace reader (ring-buffer overlap included),
        everything else through the materialised key stream, resuming past
        an already-applied prefix either way.
        """
        if self._streams_trace():
            yield from self._trace_chunks()
            return
        keys = self.keys()
        total = len(keys)
        yield from self._segment_chunks(
            keys, min(self._resume_position, total), total, total
        )

    def watch(self, theta: Optional[float] = None, *, every: int = 1) -> Iterator[HHHOutput]:
        """Feed the spec's stream, yielding an ``output(theta)`` every ``every`` chunks.

        The incremental streaming query loop: the stream advances one chunk
        (``batch_size`` packets on the batch path, ``progress_chunk`` on the
        per-packet path, one re-chunked batch on the streamed-trace path) at
        a time, and every ``every``-th chunk the algorithm is queried and the
        report yielded.  A final report is always yielded at end of stream
        when the last chunk did not land on the cadence (an empty stream
        yields exactly one report), so the last yielded output equals what
        :meth:`run` would have returned.  Queries between chunks are served
        by the engines' incremental output caches, which is what makes a
        per-chunk (``every=1``) monitor affordable.

        Args:
            theta: query threshold; defaults to the spec's theta.
            every: chunk cadence between reports (>= 1).
        """
        theta = validate_theta(theta if theta is not None else self._spec.theta)
        if not isinstance(every, int) or isinstance(every, bool) or every < 1:
            raise ConfigurationError(f"every must be a positive int, got {every!r}")
        return self._watch_iter(theta, every)

    def _watch_iter(self, theta: float, every: int) -> Iterator[HHHOutput]:
        chunks = 0
        on_cadence = False
        for _ in self._stream_chunks():
            chunks += 1
            on_cadence = chunks % every == 0
            if on_cadence:
                yield self._algorithm.output(theta)
        if not on_cadence:
            yield self._algorithm.output(theta)

    def run(
        self,
        *,
        theta: Optional[float] = None,
        checkpoints: Sequence[int] = (),
    ) -> SessionResult:
        """Feed the full stream, take the final output, return a :class:`SessionResult`.

        Batch-mode trace specs stream the trace through :meth:`feed_trace`
        (zero per-packet Python objects, optional ring-buffer overlap)
        instead of materialising a key stream; checkpoints are not supported
        on that streaming path.

        ``packets`` on the result is the absolute stream position after the
        feed - skipped resume prefix included - on *both* paths (the
        streamed-trace branch used to report ``fed + resume`` while the keys
        branch reported the raw key count, which disagreed for resumed
        sessions whose checkpoint lay beyond the rebuilt stream).
        """
        if self._streams_trace():
            if checkpoints:
                raise ConfigurationError(
                    "checkpoints are not supported on streamed trace runs; "
                    "pass explicit keys to checkpoint a trace stream"
                )
            start = time.perf_counter()
            self.feed_trace()
            seconds = time.perf_counter() - start
            return SessionResult(
                spec=self._spec,
                output=self.output(theta),
                packets=self._stream_position,
                seconds=seconds,
                measurements=[],
            )
        keys = self.keys()
        start = time.perf_counter()
        measurements = self.feed(
            keys, checkpoints=checkpoints, start=min(self._resume_position, len(keys))
        )
        seconds = time.perf_counter() - start
        return SessionResult(
            spec=self._spec,
            output=self.output(theta),
            packets=self._stream_position,
            seconds=seconds,
            measurements=measurements,
        )

    def measure_speed(self, keys: Optional[Keys] = None) -> "SpeedResult":  # noqa: F821
        """Time the feed loop the spec selects (the Figure 5 measurement).

        Per-packet specs use the unit-weight fast path measurement; batch
        specs time ``update_batch`` over the spec's chunk size.
        """
        # Late import: repro.eval imports this module through its runner.
        from repro.eval.speed import measure_batch_update_speed, measure_update_speed

        if keys is None:
            keys = self.keys()
        if self._spec.batch_size is not None:
            return measure_batch_update_speed(
                self._algorithm, keys, batch_size=self._spec.batch_size
            )
        return measure_update_speed(self._algorithm, keys)

    # ------------------------------------------------------------------ #
    # virtual-switch integration
    # ------------------------------------------------------------------ #

    def bind_switch(self, switch, cost_model=None):
        """Attach this session's algorithm to a simulated switch's dataplane.

        Wraps the algorithm in a
        :class:`~repro.vswitch.ovs.DataplaneMeasurement` (which installs both
        the per-packet and the batch datapath hooks) so the switch's
        forwarding loop feeds the same algorithm instance this session owns -
        the Figures 6-8 deployment mode, driven through the unified API.

        Returns the attached measurement.
        """
        from repro.vswitch.ovs import DataplaneMeasurement  # late: keep vswitch import-light

        measurement = DataplaneMeasurement(
            self._algorithm, cost_model if cost_model is not None else switch.cost_model
        )
        switch.attach_measurement(measurement)
        return measurement

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release algorithm-owned resources (the sharded engine's worker pool).

        Idempotent and a no-op for algorithms without a ``close`` method; a
        closed sharded session can still not be fed, so call it when done.
        """
        close = getattr(self._algorithm, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(algorithm={self._spec.algorithm.name!r}, "
            f"hierarchy={self._spec.hierarchy!r}, processed={self.processed})"
        )


def _skip_batches(batches: Iterable[Keys], skip: int) -> Iterator[Keys]:
    """Drop whole batches until exactly ``skip`` packets have been consumed.

    Periodic session checkpoints fire on batch boundaries, so a resume
    position always lands between batches of the deterministic re-chunked
    stream; a ``skip`` that would split a batch means the checkpoint does not
    belong to this stream/batch-size combination and raises.
    """
    skipped = 0
    for batch in batches:
        if skipped < skip:
            n = len(batch)
            if skipped + n > skip:
                raise CheckpointError(
                    f"resume position {skip} is not on a batch boundary "
                    f"(next batch spans {skipped}..{skipped + n}); was the "
                    f"checkpoint written with a different batch_size or trace?"
                )
            skipped += n
            continue
        yield batch
    if skipped < skip:
        raise CheckpointError(
            f"resume position {skip} lies beyond the end of the stream "
            f"({skipped} packets)"
        )


def run_experiment(spec: ExperimentSpec, **session_kwargs: Any) -> SessionResult:
    """One-shot convenience: build a :class:`Session` for ``spec`` and run it."""
    return Session(spec, **session_kwargs).run()
