"""Declarative, serializable experiment specifications.

Every experiment in the reproduction is describable as a plain JSON-able
object: a :class:`CounterSpec` (which counter backend each lattice node
runs), an :class:`AlgorithmSpec` (which HHH algorithm, with which accuracy /
confidence / performance parameters), and an :class:`ExperimentSpec` (the
algorithm plus the hierarchy, workload and run settings).  Specs validate on
construction, round-trip losslessly through ``to_dict``/``from_dict`` (and
JSON), and are consumed by :func:`repro.api.registry.build_algorithm`,
:func:`repro.api.registry.build_counter` and :class:`repro.api.session.Session`.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

from repro.api.memory import choose_counter_backend
from repro.exceptions import ConfigurationError, ConfigurationWarning

S = TypeVar("S", bound="_SpecBase")

#: Per-backend floors applied to the counter epsilon unless a spec overrides
#: them.  Count Sketch is the only backend with a non-trivial floor: its table
#: width grows as ``3 / epsilon^2``, so a tight epsilon silently degrades into
#: a width-capped (hence weaker-than-requested) sketch; clamping at 0.005
#: keeps the width meaningful.  This replaces the hard-coded
#: ``max(epsilon, 0.005)`` that used to hide inside the counter factory.
DEFAULT_MIN_EPSILON: Dict[str, float] = {"count_sketch": 0.005}


def _check_unit_interval(name: str, value: Optional[float], *, closed_right: bool = False) -> None:
    if value is None:
        return
    inside = 0.0 < value <= 1.0 if closed_right else 0.0 < value < 1.0
    if not inside:
        interval = "(0, 1]" if closed_right else "(0, 1)"
        raise ConfigurationError(f"{name} must be in {interval}, got {value}")


def _check_positive_int(name: str, value: Optional[int]) -> None:
    if value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")


class _SpecBase:
    """Shared ``to_dict``/``from_dict`` plumbing of the spec dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        """Return a plain JSON-able dict; nested specs become nested dicts."""
        assert dataclasses.is_dataclass(self)  # every concrete spec is one
        result: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            elif isinstance(value, dict):
                value = dict(value)
            result[spec_field.name] = value
        return result

    @classmethod
    def from_dict(cls: Type[S], data: Mapping[str, Any]) -> S:
        """Rebuild a spec from :meth:`to_dict` output (strict about keys)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}")
        assert dataclasses.is_dataclass(cls)  # every concrete spec is one
        known = {spec_field.name: spec_field for spec_field in fields(cls)}
        unknown = set(data) - set(known)
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            nested = _NESTED_SPEC_FIELDS.get((cls.__name__, name))
            if nested is not None and value is not None and not isinstance(value, nested):
                value = nested.from_dict(value)
            kwargs[name] = value
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialize to a JSON string (``indent=2`` by default)."""
        dumps_kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls: Type[S], text: str) -> S:
        """Rebuild a spec from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid {cls.__name__} JSON: {exc}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class CounterSpec(_SpecBase):
    """Declarative description of a per-node counter backend.

    Attributes:
        name: registered backend name (ignored when ``auto`` is set).
        epsilon: per-counter relative error target; ``None`` inherits the
            owning algorithm's resolved counter epsilon at build time.
        delta: failure probability for the probabilistic backends.
        capacity: explicit counter count (table-based backends); overrides
            the ``ceil(1/epsilon)`` derivation.
        width, depth: explicit sketch table dimensions, overriding the
            ``epsilon``/``delta`` derivations.
        track: tracked-keys bound for the sketches' heavy-hitter enumeration.
        seed: hash-function seed for the sketches.
        min_epsilon: floor applied to the resolved epsilon.  ``None`` uses the
            backend default from :data:`DEFAULT_MIN_EPSILON`; pass ``0.0`` to
            disable clamping entirely.  A :class:`ConfigurationWarning` is
            emitted whenever the clamp actually fires.
        auto: pick the backend automatically from ``memory_bytes`` (the
            ROADMAP's multi-backend-by-deployment-size selection).
        memory_bytes: memory budget driving the automatic choice.
        working_set: estimated number of distinct keys the stream touches per
            node (churn hint for the automatic choice): when it exceeds the
            Space Saving capacity the budget affords, every miss forces a
            per-event eviction, so the chooser prefers a fitting sketch -
            the batch-native backend with no eviction order to preserve.
        options: extra keyword arguments forwarded verbatim to the backend
            factory (the extension point for third-party backends).
    """

    name: str = "space_saving"
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    capacity: Optional[int] = None
    width: Optional[int] = None
    depth: Optional[int] = None
    track: Optional[int] = None
    seed: Optional[int] = None
    min_epsilon: Optional[float] = None
    auto: bool = False
    memory_bytes: Optional[int] = None
    working_set: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"counter name must be a non-empty string, got {self.name!r}")
        _check_unit_interval("epsilon", self.epsilon)
        _check_unit_interval("delta", self.delta)
        for int_field in ("capacity", "width", "depth", "track", "memory_bytes", "working_set"):
            _check_positive_int(int_field, getattr(self, int_field))
        if self.min_epsilon is not None and not 0.0 <= self.min_epsilon < 1.0:
            raise ConfigurationError(f"min_epsilon must be in [0, 1), got {self.min_epsilon}")
        if self.auto and self.memory_bytes is None:
            raise ConfigurationError("CounterSpec(auto=True) requires memory_bytes")

    def resolve(self, default_epsilon: Optional[float] = None) -> "CounterSpec":
        """Return a concrete spec: epsilon inherited, clamped, backend chosen.

        Args:
            default_epsilon: the owning algorithm's per-counter error target,
                used when the spec does not pin ``epsilon`` itself.

        Raises:
            ConfigurationError: when no epsilon can be resolved (and no
                explicit ``capacity``/``width`` sizes the backend), or the
                automatic choice finds no backend within ``memory_bytes``.
        """
        epsilon = self.epsilon if self.epsilon is not None else default_epsilon
        if epsilon is None and self.capacity is None and self.width is None:
            raise ConfigurationError(
                f"counter spec {self.name!r} has no epsilon and no explicit capacity/width; "
                "pass epsilon on the spec or build it through an algorithm"
            )
        name = self.name
        if self.auto:
            name = choose_counter_backend(
                self.memory_bytes,  # type: ignore[arg-type]  # validated in __post_init__
                epsilon=epsilon if epsilon is not None else 0.01,
                delta=self.delta if self.delta is not None else 0.01,
                track=self.track,
                working_set=self.working_set,
            )
        if epsilon is not None:
            floor = self.min_epsilon if self.min_epsilon is not None else DEFAULT_MIN_EPSILON.get(name, 0.0)
            if epsilon < floor:
                warnings.warn(
                    f"counter {name!r}: epsilon={epsilon} clamped to min_epsilon={floor} "
                    f"(set min_epsilon explicitly to override)",
                    ConfigurationWarning,
                    stacklevel=2,
                )
                epsilon = floor
        return dataclasses.replace(self, name=name, epsilon=epsilon, auto=False)

    def build(self, default_epsilon: Optional[float] = None) -> Any:
        """Instantiate the backend (delegates to :func:`repro.api.registry.build_counter`)."""
        from repro.api.registry import build_counter  # late import: registry imports this module

        return build_counter(self, epsilon=default_epsilon)


@dataclass(frozen=True)
class AlgorithmSpec(_SpecBase):
    """Declarative description of an HHH algorithm instance.

    Attributes:
        name: registered algorithm name (e.g. ``"rhhh"``, ``"mst"``).
        epsilon: overall accuracy target.
        delta: overall confidence target (randomized algorithms).
        seed: RNG seed (randomized algorithms).
        v: the RHHH performance parameter ``V``; ``None`` lets the algorithm
            pick its default (``V = H``, or ``10 H`` for ``"10-rhhh"``).
        v_multiplier: alternative to ``v``: resolve ``V = multiplier * H``
            against the hierarchy at build time (mutually exclusive with ``v``).
        updates_per_packet: the ``r`` of the paper's Corollary 6.8.
        counter: per-node counter backend; ``None`` keeps the algorithm's
            default (Space Saving).
        options: extra keyword arguments forwarded to the algorithm factory.
    """

    name: str = "rhhh"
    epsilon: float = 0.001
    delta: float = 0.001
    seed: Optional[int] = None
    v: Optional[int] = None
    v_multiplier: Optional[int] = None
    updates_per_packet: int = 1
    counter: Optional[CounterSpec] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"algorithm name must be a non-empty string, got {self.name!r}")
        _check_unit_interval("epsilon", self.epsilon)
        _check_unit_interval("delta", self.delta)
        _check_positive_int("v", self.v)
        _check_positive_int("v_multiplier", self.v_multiplier)
        _check_positive_int("updates_per_packet", self.updates_per_packet)
        if self.v is not None and self.v_multiplier is not None:
            raise ConfigurationError("v and v_multiplier are mutually exclusive; set at most one")
        if self.counter is not None and not isinstance(self.counter, CounterSpec):
            raise ConfigurationError(
                f"counter must be a CounterSpec, got {type(self.counter).__name__}"
            )

    def resolved_v(self, hierarchy_size: int) -> Optional[int]:
        """The explicit ``V`` for a hierarchy of ``hierarchy_size`` nodes (or ``None``)."""
        if self.v is not None:
            return self.v
        if self.v_multiplier is not None:
            return self.v_multiplier * hierarchy_size
        return None

    def build(self, hierarchy: Any) -> Any:
        """Instantiate the algorithm (delegates to :func:`repro.api.registry.build_algorithm`)."""
        from repro.api.registry import build_algorithm  # late import: registry imports this module

        return build_algorithm(self, hierarchy)


@dataclass(frozen=True)
class DistribSpec(_SpecBase):
    """Declarative description of the distributed aggregation tier.

    Attributes:
        switches: number of simulated switches the stream is partitioned
            across; each runs a proportionally-sized replica of the
            algorithm and ships its counter state to the aggregator.
        epoch_batches: emit one wire message per switch every this many
            ingested batches (the epoch length, in batches).
        top_k: lossy compression - ship only the ``top_k`` heaviest entries
            per lattice node, folding the residual into the error bracket
            (see :mod:`repro.distrib.compress`); ``None`` ships losslessly.
        delta: delta-encode emissions against the last acknowledged epoch
            when possible (Space Saving state only; sketches always ship
            whole snapshots).
        transport: ``"loopback"`` (reliable, ordered - the lockstep
            reference) or ``"simulated"`` (lossy queue driven by the
            session's network :class:`~repro.core.faults.FaultPlan`).
        byte_budget: per-switch total shipped-bytes budget; the cluster's
            bandwidth report flags switches exceeding it (the bench gate).
    """

    switches: int = 4
    epoch_batches: int = 1
    top_k: Optional[int] = None
    delta: bool = True
    transport: str = "loopback"
    byte_budget: Optional[int] = None

    def __post_init__(self) -> None:
        _check_positive_int("switches", self.switches)
        _check_positive_int("epoch_batches", self.epoch_batches)
        _check_positive_int("top_k", self.top_k)
        _check_positive_int("byte_budget", self.byte_budget)
        if not isinstance(self.delta, bool):
            raise ConfigurationError(f"delta must be a bool, got {self.delta!r}")
        if self.transport not in ("loopback", "simulated"):
            raise ConfigurationError(
                f"transport must be 'loopback' or 'simulated', got {self.transport!r}"
            )


@dataclass(frozen=True)
class ExperimentSpec(_SpecBase):
    """Declarative description of one full experiment run.

    Attributes:
        algorithm: the algorithm under test.
        hierarchy: registered hierarchy name (e.g. ``"2d-bytes"``).
        workload: named synthetic workload feeding the run (ignored when a
            :class:`~repro.api.session.Session` is given explicit keys or
            when ``trace`` is set).
        trace: path to a serialized binary trace (v2 columnar preferred; v1
            row traces replay with per-packet decode cost) fed instead of the
            synthetic workload.  Batch runs stream the trace straight into
            ``update_batch`` as memory-mapped key arrays - no per-packet
            Python objects.
        ingest: ring-buffer depth (in batches) of the overlapped ingest stage
            (:class:`~repro.core.ingest.RingBufferIngest`): trace reading and
            the batch engine run concurrently, bit-identical to the inline
            feed.  ``None`` feeds inline; requires ``trace`` and
            ``batch_size``.
        num_flows: workload flow-population override.
        packets: stream length; for trace runs an upper cap - the run feeds
            ``min(trace packets, packets)``.
        theta: HHH threshold fraction for the final ``output`` call.
        batch_size: feed the stream through ``update_batch`` in chunks of this
            size; ``None`` selects the per-packet path.
        shards: hash-partition the stream across this many shard replicas
            (:class:`~repro.core.shard.ShardedHHH`) and merge their counter
            summaries at output time; ``None`` or 1 runs unsharded.  A
            memory-budgeted auto counter divides its budget evenly across
            the shards.
        shard_parallel: give each shard a worker process (default); ``False``
            runs the shard replicas in-process, with identical results -
            the deterministic mode the lockstep tests pin.
        shard_policy: how parallel shard-worker failure is handled
            (:class:`~repro.core.supervise.SupervisorPolicy` policy name):
            ``"fail"`` raises a typed ``ShardFailure``, ``"restart"``
            respawns from the last supervision checkpoint and replays the
            delta (bit-identical to a failure-free run), ``"degrade"``
            continues on the survivors with widened error bounds and a
            ``failed_shards`` report on the output.
        shard_timeout: IPC timeout in seconds before an unresponsive worker
            counts as hung.
        checkpoint_every: take a durable session checkpoint every this many
            packets during ``run()``/``feed_trace()`` (requires
            ``checkpoint_path``); ``None`` disables periodic checkpoints.
        checkpoint_path: file the periodic checkpoints are (atomically)
            written to - the path ``Session.resume`` restarts from.
        distrib: run the stream through the distributed aggregation tier
            (:class:`~repro.distrib.cluster.DistributedCluster`): the stream
            is partitioned across ``distrib.switches`` switch nodes whose
            shipped counter state an aggregator merges into the global
            answer.  Requires ``batch_size``; mutually exclusive with
            ``shards`` and with periodic checkpointing.
        label: free-form tag recorded in results.
    """

    algorithm: AlgorithmSpec = field(default_factory=AlgorithmSpec)
    hierarchy: str = "2d-bytes"
    workload: str = "chicago16"
    trace: Optional[str] = None
    ingest: Optional[int] = None
    num_flows: Optional[int] = None
    packets: int = 100_000
    theta: float = 0.05
    batch_size: Optional[int] = None
    shards: Optional[int] = None
    shard_parallel: bool = True
    shard_policy: str = "fail"
    shard_timeout: float = 30.0
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    distrib: Optional[DistribSpec] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, AlgorithmSpec):
            raise ConfigurationError(
                f"algorithm must be an AlgorithmSpec, got {type(self.algorithm).__name__}"
            )
        if not self.hierarchy or not isinstance(self.hierarchy, str):
            raise ConfigurationError(f"hierarchy must be a non-empty string, got {self.hierarchy!r}")
        if not isinstance(self.packets, int) or isinstance(self.packets, bool) or self.packets < 0:
            raise ConfigurationError(f"packets must be a non-negative integer, got {self.packets!r}")
        _check_unit_interval("theta", self.theta, closed_right=True)
        _check_positive_int("batch_size", self.batch_size)
        _check_positive_int("num_flows", self.num_flows)
        _check_positive_int("shards", self.shards)
        if self.trace is not None and (not self.trace or not isinstance(self.trace, str)):
            raise ConfigurationError(f"trace must be a non-empty path string, got {self.trace!r}")
        _check_positive_int("ingest", self.ingest)
        if self.ingest is not None:
            if self.trace is None:
                raise ConfigurationError("ingest requires a trace to overlap (set trace=...)")
            if self.batch_size is None:
                raise ConfigurationError(
                    "ingest overlaps the batch feed; set batch_size alongside ingest"
                )
        if not isinstance(self.shard_parallel, bool):
            raise ConfigurationError(
                f"shard_parallel must be a bool, got {self.shard_parallel!r}"
            )
        if self.shard_policy not in ("fail", "restart", "degrade"):
            raise ConfigurationError(
                f"shard_policy must be 'fail', 'restart' or 'degrade', got {self.shard_policy!r}"
            )
        if not isinstance(self.shard_timeout, (int, float)) or isinstance(
            self.shard_timeout, bool
        ) or self.shard_timeout <= 0:
            raise ConfigurationError(
                f"shard_timeout must be a positive number, got {self.shard_timeout!r}"
            )
        _check_positive_int("checkpoint_every", self.checkpoint_every)
        if self.checkpoint_path is not None and (
            not self.checkpoint_path or not isinstance(self.checkpoint_path, str)
        ):
            raise ConfigurationError(
                f"checkpoint_path must be a non-empty path string, got {self.checkpoint_path!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_path is None:
            raise ConfigurationError(
                "checkpoint_every needs somewhere to write; set checkpoint_path alongside it"
            )
        if self.distrib is not None:
            if not isinstance(self.distrib, DistribSpec):
                raise ConfigurationError(
                    f"distrib must be a DistribSpec, got {type(self.distrib).__name__}"
                )
            if self.batch_size is None:
                raise ConfigurationError(
                    "the distributed tier partitions batches; set batch_size alongside distrib"
                )
            if self.shards is not None and self.shards > 1:
                raise ConfigurationError(
                    "distrib and shards are mutually exclusive; the distributed tier "
                    "does its own partitioning (each switch is a replica)"
                )
            if self.checkpoint_every is not None:
                raise ConfigurationError(
                    "periodic checkpointing is not supported for distributed runs; "
                    "drop checkpoint_every or distrib"
                )


#: Which spec fields hold nested specs, for ``from_dict`` reconstruction.
_NESTED_SPEC_FIELDS: Dict[Tuple[str, str], Type[_SpecBase]] = {
    ("AlgorithmSpec", "counter"): CounterSpec,
    ("ExperimentSpec", "algorithm"): AlgorithmSpec,
    ("ExperimentSpec", "distrib"): DistribSpec,
}
